"""Overlapping q-gram count filtering (the classic Gravano et al. bound,
lifted to uncertain strings as a *support-level* relaxation).

For deterministic strings, ``ed(r, s) <= k`` implies the bags of
overlapping q-grams share at least

    ``max(|r|, |s|) - q + 1 - k * q``

grams (each edit destroys at most ``q`` grams). The paper's indexing
deliberately avoids overlapping grams for space reasons (Section 7.9);
this module implements the overlapping filter anyway — as the baseline
the comparison argues against, and as an extra cheap pre-filter.

For uncertain strings an exact count distribution is expensive, so the
filter uses a safe relaxation: in *every* world, a common gram of the
pair needs an ``r``-window and an ``s``-window whose supports intersect,
so the number of ``r``-windows with any support-compatible ``s``-window
upper-bounds the common-gram count of every world. If even that optimistic
count misses the threshold, no world pair can be within ``k``.
"""

from __future__ import annotations

from repro.filters.base import FilterDecision, FilterVerdict
from repro.uncertain.string import UncertainString


def window_support_keys(string: UncertainString, q: int) -> list[frozenset[str]]:
    """Per-window support sets, each gram position as a set of instances.

    Window ``i`` covers positions ``[i, i + q)``; its support is the set
    of deterministic grams it can realize. To keep this filter cheap the
    support is represented per *position* (product form) rather than
    enumerated; two windows are compatible iff every position's supports
    intersect — equivalent to gram-set intersection for product supports.
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    supports = [frozenset(pos.chars) for pos in string]
    return [
        tuple(supports[i : i + q])  # type: ignore[misc]
        for i in range(len(string) - q + 1)
    ]


def _compatible(left_window, right_window) -> bool:
    return all(a & b for a, b in zip(left_window, right_window))


class OverlapCountFilter:
    """Support-level overlapping q-gram count filter.

    ``decide`` rejects a pair only when *no* joint world can satisfy the
    count bound — a necessary condition like Lemma 4, strictly weaker
    than the paper's probabilistic pruning but cheaper than computing
    alphas when used as a pre-filter. Mainly exists for the Section 7.9
    ablation.
    """

    def __init__(self, k: int, q: int = 2) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self.k = k
        self.q = q

    def threshold(self, left_length: int, right_length: int) -> int:
        """Minimum common grams required by ``ed <= k``."""
        return max(left_length, right_length) - self.q + 1 - self.k * self.q

    def max_common_grams(
        self, left: UncertainString, right: UncertainString
    ) -> int:
        """Optimistic bound on common grams over all joint worlds.

        Counts left windows with at least one support-compatible right
        window, allowing shifts of at most ``k`` positions (an edit
        script with ``<= k`` operations shifts a surviving gram by at
        most ``k``).
        """
        left_windows = window_support_keys(left, self.q)
        right_windows = window_support_keys(right, self.q)
        count = 0
        for i, left_window in enumerate(left_windows):
            lo = max(0, i - self.k)
            hi = min(len(right_windows), i + self.k + 1)
            for j in range(lo, hi):
                if _compatible(left_window, right_windows[j]):
                    count += 1
                    break
        return count

    def decide(self, left: UncertainString, right: UncertainString) -> FilterDecision:
        """Reject when even the optimistic gram count misses the bound."""
        if abs(len(left) - len(right)) > self.k:
            return FilterDecision(
                FilterVerdict.REJECT, upper=0.0, reason="length gap exceeds k"
            )
        required = self.threshold(len(left), len(right))
        if required <= 0:
            return FilterDecision(FilterVerdict.UNDECIDED)
        possible = self.max_common_grams(left, right)
        if possible < required:
            return FilterDecision(
                FilterVerdict.REJECT,
                upper=0.0,
                reason=(
                    f"at most {possible} common {self.q}-grams possible, "
                    f"{required} required"
                ),
            )
        return FilterDecision(FilterVerdict.UNDECIDED)

    def index_entry_count(self, string: UncertainString) -> int:
        """Instantiated overlapping grams (the [10] index-size measure)."""
        total = 0
        for start in range(len(string) - self.q + 1):
            grams = 1
            for pos in string[start : start + self.q]:
                grams *= len(pos)
            total += grams
        return total
