"""Compiled scalar kernels for the hot filters (optional ``native`` backend).

``cdfdp.c`` next to this module compiles the three hottest per-pair
kernels — the Theorem 4 CDF band DP, the banded edit distance it
short-circuits to, and the Section 5 frequency bounds — into one plain-C
shared library with **bit-for-bit** the reference kernels' floats (see
the C file's header and DESIGN.md §6j for why that holds). The library
is built by setuptools as an *optional* ``ext_module``: this package
always imports, and :func:`native_available` /
:func:`native_unavailable_reason` report whether (and why not) the
compiled kernels can actually run here.

The library is deliberately **not** a CPython extension module (no
``Python.h``): it is loaded with :mod:`ctypes`, which releases the GIL
around every call — concurrent serve threads verify candidates in
parallel inside the C kernels, which are pure and reentrant by
construction. The cost is per-call marshalling, paid once per *string*
instead of once per call: each :class:`UncertainString` flattens its
agreement table into three C-ready arrays (``offs``/``codes``/``probs``)
and each :class:`FrequencyProfile` its count distributions into
S1/S2/S3 planes, cached on the per-collection feature objects
(``StringFeatures._native_pack`` / ``FrequencyProfile._native_pack``)
so the join pays it once per indexed string. Packs pickle by value and
recompute their buffer addresses on rebuild, so spawn-mode worker
publication works unchanged.

``REPRO_NATIVE_DISABLE=1`` in the environment makes the backend report
unavailable even when the library is built — the CI fallback leg and
the no-toolchain story use this.
"""

from __future__ import annotations

import ctypes
import glob
import os
import threading
from array import array
from typing import Sequence

from repro.filters.frequency import FrequencyProfile
from repro.uncertain.string import UncertainString

_Bounds = tuple[tuple[float, ...], tuple[float, ...]]

#: Must match REPRO_NATIVE_ABI in cdfdp.c; a library reporting anything
#: else is a stale build and is treated as not available.
_ABI_VERSION = 1

_lib: "ctypes.CDLL | None" = None
_load_error: str | None = None
_load_attempted = False
_LOAD_LOCK = threading.Lock()


def _try_load() -> "tuple[ctypes.CDLL | None, str | None]":
    """Locate, load, and type-check the compiled library (once)."""
    if array("i").itemsize != 4 or array("d").itemsize != 8:
        return None, (
            "platform array layouts are not 32-bit ints / 64-bit doubles"
        )
    here = os.path.dirname(os.path.abspath(__file__))
    candidates: list[str] = []
    for pattern in ("_cdfdp*.so", "_cdfdp*.pyd", "_cdfdp*.dylib"):
        candidates.extend(sorted(glob.glob(os.path.join(here, pattern))))
    if not candidates:
        return None, (
            "extension not built (no _cdfdp shared library in "
            "repro/filters/_native; build with "
            "`python setup.py build_ext --inplace`)"
        )
    path = candidates[0]
    try:
        lib = ctypes.CDLL(path)
    except OSError as exc:
        return None, f"could not load {path}: {exc}"
    try:
        lib.repro_abi_version.restype = ctypes.c_int32
        lib.repro_abi_version.argtypes = []
        abi = int(lib.repro_abi_version())
    except AttributeError:
        return None, f"{path} exports no repro_abi_version (stale build?)"
    if abi != _ABI_VERSION:
        return None, (
            f"{path} has kernel ABI {abi}, expected {_ABI_VERSION} "
            "(stale build; rebuild the extension)"
        )
    p, i32 = ctypes.c_void_p, ctypes.c_int32
    lib.repro_edit_banded.restype = i32
    lib.repro_edit_banded.argtypes = [p, i32, p, i32, i32]
    lib.repro_cdf_bounds.restype = i32
    lib.repro_cdf_bounds.argtypes = [
        p, p, p, i32, i32,  # left: offs, codes, probs, n, is_certain
        p, p, p, i32, i32,  # right
        i32, p, p,          # k, out_l, out_u
    ]
    lib.repro_frequency_bounds.restype = i32
    lib.repro_frequency_bounds.argtypes = [
        i32, i32, p, p, p, p, p, p,  # left: len, m, chars, certain, offs, S1-S3
        i32, i32, p, p, p, p, p, p,  # right
        i32, p,                      # k, out_upper
    ]
    return lib, None


def native_unavailable_reason() -> str | None:
    """``None`` when the compiled kernels can run, else a human reason.

    The ``REPRO_NATIVE_DISABLE`` override is consulted on every call
    (tests and the CI fallback leg toggle it at runtime); the load
    itself happens at most once per process.
    """
    disable = os.environ.get("REPRO_NATIVE_DISABLE", "")
    if disable not in ("", "0"):
        return "disabled by REPRO_NATIVE_DISABLE in the environment"
    global _lib, _load_error, _load_attempted
    if not _load_attempted:
        with _LOAD_LOCK:
            if not _load_attempted:
                _lib, _load_error = _try_load()
                _load_attempted = True
    return _load_error


def native_available() -> bool:
    """Whether the compiled ``native`` backend can actually run here."""
    return native_unavailable_reason() is None


def _require_lib() -> "ctypes.CDLL":
    reason = native_unavailable_reason()
    if reason is not None:
        raise RuntimeError(f"native kernels unavailable: {reason}")
    assert _lib is not None
    return _lib


# ----------------------------------------------------------------------
# Marshalling: per-string / per-profile packs
# ----------------------------------------------------------------------


def _rebuild_string_pack(
    offs: list[int],
    codes: list[int],
    probs: list[float],
    length: int,
    is_certain: bool,
) -> "_StringPack":
    return _StringPack(
        array("i", offs), array("i", codes), array("d", probs),
        length, is_certain,
    )


class _StringPack:
    """A string's agreement table flattened into C-ready arrays.

    ``offs[i]:offs[i+1]`` delimit position ``i``'s support in ``codes``
    (unicode code points) and ``probs`` — most-probable-first, the exact
    order the scalar DP's ``p1`` accumulation walks. A certain position
    is support size 1 with probability exactly 1.0. ``args`` is the
    ready-to-pass ctypes argument tuple (addresses are only valid for
    this pack's lifetime — the pack keeps the arrays alive).
    """

    __slots__ = ("offs", "codes", "probs", "length", "is_certain", "args")

    def __init__(
        self,
        offs: "array[int]",
        codes: "array[int]",
        probs: "array[float]",
        length: int,
        is_certain: bool,
    ) -> None:
        self.offs = offs
        self.codes = codes
        self.probs = probs
        self.length = length
        self.is_certain = is_certain
        self.args = (
            offs.buffer_info()[0],
            codes.buffer_info()[0],
            probs.buffer_info()[0],
            length,
            1 if is_certain else 0,
        )

    def __reduce__(self) -> "tuple[object, tuple[object, ...]]":
        # Raw buffer addresses are process-local: pickle the values and
        # re-derive fresh addresses on rebuild (spawn-mode workers).
        return (
            _rebuild_string_pack,
            (
                self.offs.tolist(),
                self.codes.tolist(),
                self.probs.tolist(),
                self.length,
                self.is_certain,
            ),
        )


def _build_string_pack(string: UncertainString) -> _StringPack:
    table = string.agreement_table()
    offs = [0]
    codes: list[int] = []
    probs: list[float] = []
    is_certain = True
    for entry in table:
        if type(entry) is str:
            codes.append(ord(entry))
            probs.append(1.0)
        else:
            is_certain = False
            chars, entry_probs, _pdf = entry  # type: ignore[misc]
            codes.extend(ord(char) for char in chars)
            probs.extend(entry_probs)
        offs.append(len(codes))
    return _StringPack(
        array("i", offs), array("i", codes), array("d", probs),
        len(table), is_certain,
    )


def _string_pack(
    string: UncertainString, features: object | None
) -> _StringPack:
    """The string's pack, cached on its features object when possible."""
    if features is not None:
        pack = getattr(features, "_native_pack", None)
        if pack is not None:
            return pack
        pack = _build_string_pack(string)
        try:
            features._native_pack = pack  # type: ignore[attr-defined]
        except AttributeError:
            # Feature objects without the cache slot stay transient.
            return pack
        return pack
    return _build_string_pack(string)


def _rebuild_profile_pack(
    length: int,
    chars: list[int],
    certain: list[int],
    offs: list[int],
    pmf: list[float],
    survival: list[float],
    tail: list[float],
) -> "_ProfilePack":
    return _ProfilePack(
        length, array("i", chars), array("i", certain), array("i", offs),
        array("d", pmf), array("d", survival), array("d", tail),
    )


class _ProfilePack:
    """A frequency profile's count distributions in C layout.

    ``chars`` is the ascending support alphabet (code points); per
    character ``i``, ``certain[i]`` is ``f^c`` and ``offs[i]:offs[i+1]``
    delimit its S1/S2/S3 rows in ``pmf``/``survival``/``tail`` — the
    identical floats of the cached :class:`CharCountDistribution`
    properties.
    """

    __slots__ = (
        "length", "chars", "certain", "offs", "pmf", "survival", "tail",
        "args",
    )

    def __init__(
        self,
        length: int,
        chars: "array[int]",
        certain: "array[int]",
        offs: "array[int]",
        pmf: "array[float]",
        survival: "array[float]",
        tail: "array[float]",
    ) -> None:
        self.length = length
        self.chars = chars
        self.certain = certain
        self.offs = offs
        self.pmf = pmf
        self.survival = survival
        self.tail = tail
        self.args = (
            length,
            len(chars),
            chars.buffer_info()[0],
            certain.buffer_info()[0],
            offs.buffer_info()[0],
            pmf.buffer_info()[0],
            survival.buffer_info()[0],
            tail.buffer_info()[0],
        )

    def __reduce__(self) -> "tuple[object, tuple[object, ...]]":
        return (
            _rebuild_profile_pack,
            (
                self.length,
                self.chars.tolist(),
                self.certain.tolist(),
                self.offs.tolist(),
                self.pmf.tolist(),
                self.survival.tolist(),
                self.tail.tolist(),
            ),
        )


def _build_profile_pack(profile: FrequencyProfile) -> _ProfilePack:
    chars: list[int] = []
    certain: list[int] = []
    offs = [0]
    pmf: list[float] = []
    survival: list[float] = []
    tail: list[float] = []
    for char in profile.sorted_chars:
        dist = profile.distribution(char)
        chars.append(ord(char))
        certain.append(dist.certain)
        pmf.extend(dist.pmf)
        survival.extend(dist.survival)
        tail.extend(dist.scaled_tail)
        offs.append(len(pmf))
    return _ProfilePack(
        profile.length, array("i", chars), array("i", certain),
        array("i", offs), array("d", pmf), array("d", survival),
        array("d", tail),
    )


def _profile_pack(profile: FrequencyProfile) -> _ProfilePack:
    pack = getattr(profile, "_native_pack", None)
    if pack is not None:
        return pack
    pack = _build_profile_pack(profile)
    try:
        profile._native_pack = pack
    except AttributeError:
        # Profile-like objects without the cache slot stay transient.
        return pack
    return pack


# ----------------------------------------------------------------------
# Kernel entry points
# ----------------------------------------------------------------------


def edit_banded_native(left: str, right: str, k: int) -> int:
    """Compiled :func:`repro.distance.edit.edit_distance_banded`."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    lib = _require_lib()
    left_codes = array("i", [ord(char) for char in left])
    right_codes = array("i", [ord(char) for char in right])
    result = int(
        lib.repro_edit_banded(
            left_codes.buffer_info()[0],
            len(left_codes),
            right_codes.buffer_info()[0],
            len(right_codes),
            k,
        )
    )
    if result < 0:
        raise MemoryError("native banded edit-distance allocation failed")
    return result


def cdf_bounds_native(
    left: UncertainString,
    right: UncertainString,
    k: int,
    left_features: object | None = None,
    right_features: object | None = None,
) -> _Bounds:
    """Compiled :func:`repro.filters.cdf.cdf_bounds`, bit-identical."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    lib = _require_lib()
    left_pack = _string_pack(left, left_features)
    right_pack = _string_pack(right, right_features)
    k1 = k + 1
    out = array("d", bytes(16 * k1))
    address = out.buffer_info()[0]
    rc = int(
        lib.repro_cdf_bounds(
            *left_pack.args, *right_pack.args, k, address, address + 8 * k1
        )
    )
    if rc == -1:
        raise MemoryError("native CDF kernel allocation failed")
    if rc != 0:
        raise ValueError(f"native CDF kernel rejected the call (rc={rc})")
    return tuple(out[:k1]), tuple(out[k1:])


def cdf_bounds_batch_native(
    left: UncertainString,
    rights: Sequence[UncertainString],
    k: int,
    left_features: object | None = None,
    right_features: "Sequence[object | None] | None" = None,
) -> list[_Bounds]:
    """Batch variant: one compiled scalar call per candidate, in order."""
    if right_features is None:
        right_features = [None] * len(rights)
    return [
        cdf_bounds_native(left, right, k, left_features, features)
        for right, features in zip(rights, right_features)
    ]


def frequency_bounds_native(
    left: FrequencyProfile,
    right: FrequencyProfile,
    k: int,
) -> tuple[int, float | None]:
    """Compiled scalar frequency bounds, bit-identical to the reference.

    Returns ``(Lemma 6 lower bound, Theorem 3 upper bound)``; the upper
    bound is ``None`` on a Lemma 6 reject, matching the reference
    scalar path's short-circuit
    (:func:`repro.filters.frequency.frequency_bounds`).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    lib = _require_lib()
    left_pack = _profile_pack(left)
    right_pack = _profile_pack(right)
    out = array("d", (0.0,))
    lower_fd = int(
        lib.repro_frequency_bounds(
            *left_pack.args, *right_pack.args, k, out.buffer_info()[0]
        )
    )
    if lower_fd < 0:
        raise ValueError(
            f"native frequency kernel rejected the call (rc={lower_fd})"
        )
    if lower_fd > k:
        return lower_fd, None
    return lower_fd, out[0]


def frequency_bounds_batch_native(
    left: FrequencyProfile,
    rights: Sequence[FrequencyProfile],
    k: int,
) -> list[tuple[int, float]]:
    """Batch variant matching ``frequency_bounds_batch``: the upper
    bound is computed unconditionally (same floats — the compiled
    kernel always evaluates it; the scalar wrapper merely withholds it
    on Lemma 6 rejects)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    lib = _require_lib()
    left_pack = _profile_pack(left)
    out = array("d", (0.0,))
    out_address = out.buffer_info()[0]
    rows: list[tuple[int, float]] = []
    for right in rights:
        right_pack = _profile_pack(right)
        lower_fd = int(
            lib.repro_frequency_bounds(
                *left_pack.args, *right_pack.args, k, out_address
            )
        )
        if lower_fd < 0:
            raise ValueError(
                f"native frequency kernel rejected the call (rc={lower_fd})"
            )
        rows.append((lower_fd, out[0]))
    return rows
