/* Compiled kernels for the hot per-pair filters (DESIGN.md section 6j).
 *
 * Three entry points, mirroring the pinned python references
 * operation-for-operation so the results are bit-identical IEEE-754
 * binary64 floats:
 *
 *   repro_edit_banded       <-> repro.distance.edit.edit_distance_banded
 *   repro_cdf_bounds        <-> repro.filters.cdf.cdf_bounds
 *   repro_frequency_bounds  <-> repro.filters.frequency.frequency_bounds
 *
 * Bit-exactness discipline
 * ------------------------
 * CPython floats are C doubles and every arithmetic step of the
 * reference kernels maps 1:1 onto one C expression here with the SAME
 * association order (python's `a + b + c` is `(a + b) + c`; explicit
 * parentheses in the reference are preserved explicitly below).  The
 * only transcendental call, `x ** 2` on a float, is CPython's
 * `pow(x, 2.0)` from libm — this file calls the same libm `pow`.  The
 * build must therefore NOT enable value-changing float optimisations:
 * setup.py compiles with -ffp-contract=off -fno-fast-math so no FMA
 * contraction or reassociation can alter a rounding step.  Within one
 * interpreter (same libm, same FPU mode) the outputs are bitwise equal
 * to the python reference by construction; the parity suites in
 * tests/test_native_backend.py enforce it empirically.
 *
 * Data layout (marshalled once per string/profile by
 * repro.filters._native and cached — see that module):
 *
 * A string is its per-position agreement table flattened into three
 * arrays: `offs[i]..offs[i+1]` delimit position i's support in `codes`
 * (unicode code points) and `probs` (probabilities, most probable
 * first — the exact iteration order of UncertainPosition.agreement).
 * A certain position has support size 1 with probability 1.0.
 *
 * A frequency profile is its ascending support alphabet (`chars`,
 * code points) with, per character, the certain count and the S1/S2/S3
 * arrays (pmf / survival / scaled_tail, identical floats to the cached
 * CharCountDistribution properties) flattened behind `offs`.
 *
 * All functions are pure and reentrant (stack/heap scratch only, no
 * globals): the ctypes wrapper releases the GIL around every call, so
 * concurrent serve threads may be in here simultaneously.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#if defined(_WIN32)
#define REPRO_EXPORT __declspec(dllexport)
#else
#define REPRO_EXPORT __attribute__((visibility("default")))
#endif

/* Bumped whenever an exported signature or marshalling layout changes;
 * the python wrapper refuses to load a library reporting a different
 * version (a stale build must degrade to "unavailable", never to
 * garbage reads). */
#define REPRO_NATIVE_ABI 1

REPRO_EXPORT int32_t
repro_abi_version(void)
{
    return REPRO_NATIVE_ABI;
}

/* CPython's `x ** 2` on a float calls libm's pow(x, 2.0), which is NOT
 * always bitwise-equal to x * x (glibc's pow can land 1 ulp off the
 * correctly-rounded square).  GCC folds a literal pow(x, 2.0) call
 * into x * x at -O2, silently breaking parity with the interpreter —
 * the volatile function pointer forces a real call into the same libm
 * CPython uses. */
static double (*volatile repro_pow)(double, double) = pow;

/* ------------------------------------------------------------------ */
/* Banded edit distance (mirrors edit_distance_banded)                 */
/* ------------------------------------------------------------------ */

/* Exact distance when <= k, else k + 1.  Stack rows for short strings,
 * heap beyond; -1 only on allocation failure (caller raises). */
#define EDIT_STACK_CAP 256

REPRO_EXPORT int32_t
repro_edit_banded(const int32_t *left, int32_t n, const int32_t *right,
                  int32_t m, int32_t k)
{
    int32_t length_gap = n > m ? n - m : m - n;
    if (k < 0)
        return -2;
    if (length_gap > k)
        return k + 1;
    if (n == m) {
        int32_t i, same = 1;
        for (i = 0; i < n; i++) {
            if (left[i] != right[i]) {
                same = 0;
                break;
            }
        }
        if (same)
            return 0;
    }
    if (n < m) {
        const int32_t *tmp_s = left;
        int32_t tmp_n = n;
        left = right;
        n = m;
        right = tmp_s;
        m = tmp_n;
    }
    {
        int32_t big = k + 1;
        int32_t stack_rows[2 * (EDIT_STACK_CAP + 1)];
        int32_t *heap_rows = NULL;
        int32_t *previous, *current;
        int32_t i, j, result;
        if (m + 1 <= EDIT_STACK_CAP + 1) {
            previous = stack_rows;
            current = stack_rows + (m + 1);
        } else {
            heap_rows = (int32_t *)malloc(sizeof(int32_t) * 2 * (size_t)(m + 1));
            if (heap_rows == NULL)
                return -1;
            previous = heap_rows;
            current = heap_rows + (m + 1);
        }
        for (j = 0; j <= m; j++)
            previous[j] = j <= k ? j : big;
        for (j = 0; j <= m; j++)
            current[j] = big;
        for (i = 1; i <= n; i++) {
            int32_t lo = i - k > 1 ? i - k : 1;
            int32_t hi = m < i + k ? m : i + k;
            int32_t row_min;
            int32_t left_char = left[i - 1];
            int32_t *swap;
            if (i <= k) {
                current[0] = i;
                row_min = i;
            } else {
                current[lo - 1] = big;
                row_min = big;
            }
            for (j = lo; j <= hi; j++) {
                int32_t cost = left_char == right[j - 1] ? 0 : 1;
                int32_t best = previous[j - 1] + cost;
                if (previous[j] + 1 < best)
                    best = previous[j] + 1;
                if (current[j - 1] + 1 < best)
                    best = current[j - 1] + 1;
                if (best > big)
                    best = big;
                current[j] = best;
                if (best < row_min)
                    row_min = best;
            }
            if (row_min > k) {
                free(heap_rows);
                return big;
            }
            if (hi < m)
                current[hi + 1] = big;
            swap = previous;
            previous = current;
            current = swap;
        }
        result = previous[m] <= k ? previous[m] : big;
        free(heap_rows);
        return result;
    }
}

/* ------------------------------------------------------------------ */
/* Theorem 4 CDF band DP (mirrors cdf_bounds)                          */
/* ------------------------------------------------------------------ */

/* p1 = Pr(R[x] = S[y]) from two marshalled positions: iterate the
 * smaller support (ties -> left, like the python reference), in its
 * most-probable-first array order, looking the character up in the
 * other side's support (absent -> 0.0).  Reproduces the inlined
 * accumulation of cdf_bounds / agreement_from_entries bit-for-bit:
 * the certain-position shortcuts of the reference (1.0 comparisons,
 * single pdf lookups) are exactly this loop specialised to support
 * size 1, and multiplying by 1.0 / adding 0.0 is exact in IEEE-754. */
static double
agreement_p1(const int32_t *lc, const double *lp, int32_t ls,
             const int32_t *rc, const double *rp, int32_t rs)
{
    const int32_t *ic, *oc;
    const double *ip, *op;
    int32_t is, os, i, j;
    double p1 = 0.0;
    if (ls > rs) {
        ic = rc; ip = rp; is = rs;
        oc = lc; op = lp; os = ls;
    } else {
        ic = lc; ip = lp; is = ls;
        oc = rc; op = rp; os = rs;
    }
    for (i = 0; i < is; i++) {
        int32_t code = ic[i];
        double other = 0.0;
        for (j = 0; j < os; j++) {
            if (oc[j] == code) {
                other = op[j];
                break;
            }
        }
        p1 += ip[i] * other;
    }
    return p1;
}

/* Band buffers fit the stack through k = 16; larger thresholds heap-
 * allocate (width * (k+1) doubles per buffer, four buffers). */
#define CDF_STACK_K 16
#define CDF_STACK_SIZE ((2 * CDF_STACK_K + 3) * (CDF_STACK_K + 1))

/* Writes L[0..k] to out_l and U[0..k] to out_u.  Returns 0 on success,
 * -1 on allocation failure, -2 on invalid k. */
REPRO_EXPORT int32_t
repro_cdf_bounds(const int32_t *l_offs, const int32_t *l_codes,
                 const double *l_probs, int32_t n, int32_t l_certain,
                 const int32_t *r_offs, const int32_t *r_codes,
                 const double *r_probs, int32_t m, int32_t r_certain,
                 int32_t k, double *out_l, double *out_u)
{
    int32_t k1 = k + 1;
    int32_t width = 2 * k + 3;
    size_t size = (size_t)width * (size_t)k1;
    int32_t length_gap = n > m ? n - m : m - n;
    int32_t j, x, y;
    double stack_buf[4 * CDF_STACK_SIZE];
    double *heap_buf = NULL;
    double *prev_l, *prev_u, *cur_l, *cur_u;

    if (k < 0)
        return -2;
    if (length_gap > k) {
        for (j = 0; j < k1; j++)
            out_l[j] = out_u[j] = 0.0;
        return 0;
    }
    if (l_certain && r_certain) {
        /* One joint world: both bounds collapse to the exact indicator
         * [ed <= j] (the reference short-circuits to the banded integer
         * kernel; a certain string's codes array IS its text). */
        int32_t distance = repro_edit_banded(l_codes, n, r_codes, m, k);
        if (distance < 0)
            return distance;
        for (j = 0; j < k1; j++) {
            double v = distance <= k && j >= distance ? 1.0 : 0.0;
            out_l[j] = out_u[j] = v;
        }
        return 0;
    }

    if (k <= CDF_STACK_K) {
        prev_l = stack_buf;
        prev_u = stack_buf + CDF_STACK_SIZE;
        cur_l = stack_buf + 2 * CDF_STACK_SIZE;
        cur_u = stack_buf + 3 * CDF_STACK_SIZE;
    } else {
        heap_buf = (double *)malloc(sizeof(double) * 4 * size);
        if (heap_buf == NULL)
            return -1;
        prev_l = heap_buf;
        prev_u = heap_buf + size;
        cur_l = heap_buf + 2 * size;
        cur_u = heap_buf + 3 * size;
    }
    memset(prev_l, 0, sizeof(double) * size);
    memset(prev_u, 0, sizeof(double) * size);

    /* Row x = 0: boundary cells (0, y) — exact bounds 1[j >= y]. */
    {
        int32_t ymax = m < k ? m : k;
        for (y = 0; y <= ymax; y++) {
            size_t base = (size_t)(y + k1) * (size_t)k1;
            for (j = 0; j < k1; j++) {
                double v = j >= y ? 1.0 : 0.0;
                prev_l[base + j] = v;
                prev_u[base + j] = v;
            }
        }
    }

    for (x = 1; x <= n; x++) {
        double row_mass = 0.0;
        int32_t y_lo = x - k > 0 ? x - k : 0;
        int32_t y_hi = m < x + k ? m : x + k;
        int32_t y_start;
        const int32_t *lc = l_codes + l_offs[x - 1];
        const double *lp = l_probs + l_offs[x - 1];
        int32_t ls = l_offs[x] - l_offs[x - 1];
        double *swap;
        memset(cur_l, 0, sizeof(double) * size);
        memset(cur_u, 0, sizeof(double) * size);
        if (y_lo == 0) {
            /* Boundary cell (x, 0), x <= k: exact bounds 1[j >= x]. */
            size_t base = (size_t)(k1 - x) * (size_t)k1;
            for (j = 0; j < k1; j++) {
                double v = j >= x ? 1.0 : 0.0;
                cur_l[base + j] = v;
                cur_u[base + j] = v;
            }
            y_start = 1;
        } else {
            y_start = y_lo;
        }
        for (y = y_start; y <= y_hi; y++) {
            size_t out = (size_t)(y - x + k1) * (size_t)k1;
            size_t diag = out;        /* (x-1, y-1) in the previous row */
            size_t up = out - k1;     /* D2 = (x, y-1) in the current row */
            size_t side = out + k1;   /* D3 = (x-1, y) in the previous row */
            const int32_t *rc = r_codes + r_offs[y - 1];
            const double *rp = r_probs + r_offs[y - 1];
            int32_t rs = r_offs[y] - r_offs[y - 1];
            double p1 = agreement_p1(lc, lp, ls, rc, rp, rs);
            if (p1 == 1.0) {
                /* p2 = 0: lower bounds copy the diagonal cell, the
                 * upper transition keeps only its unscaled D2/D3
                 * terms.  Association matches the reference:
                 * a + (b + c). */
                cur_l[out] = prev_l[diag];
                cur_u[out] = prev_u[diag];
                for (j = 1; j < k1; j++) {
                    double u;
                    cur_l[out + j] = prev_l[diag + j];
                    u = prev_u[diag + j]
                        + (cur_u[up + j - 1] + prev_u[side + j - 1]);
                    cur_u[out + j] = u < 1.0 ? u : 1.0;
                }
                row_mass += cur_u[out + k];
                continue;
            }
            {
                /* argmin D_i: the neighbor with lexicographically
                 * greatest L array, same two-step scan as the
                 * reference. */
                const double *best_buf = prev_l;
                size_t best_off = diag;
                for (j = 0; j < k1; j++) {
                    double a = cur_l[up + j];
                    double b = best_buf[best_off + j];
                    if (a != b) {
                        if (a > b) {
                            best_buf = cur_l;
                            best_off = up;
                        }
                        break;
                    }
                }
                for (j = 0; j < k1; j++) {
                    double a = prev_l[side + j];
                    double b = best_buf[best_off + j];
                    if (a != b) {
                        if (a > b) {
                            best_buf = prev_l;
                            best_off = side;
                        }
                        break;
                    }
                }
                if (p1 == 0.0) {
                    /* p2 = 1: diagonal terms vanish; j = 0 cells stay
                     * at the row-reset zero.  Association: (a + b) + c. */
                    for (j = 1; j < k1; j++) {
                        double u;
                        cur_l[out + j] = best_buf[best_off + j - 1];
                        u = (prev_u[diag + j - 1] + cur_u[up + j - 1])
                            + prev_u[side + j - 1];
                        cur_u[out + j] = u < 1.0 ? u : 1.0;
                    }
                    row_mass += cur_u[out + k];
                    continue;
                }
                {
                    double p2 = 1.0 - p1;
                    double value = p1 * prev_l[diag];
                    cur_l[out] = value > 0.0 ? value : 0.0;
                    value = p1 * prev_u[diag];
                    cur_u[out] = value < 1.0 ? value : 1.0;
                    for (j = 1; j < k1; j++) {
                        double from_diag = p1 * prev_l[diag + j];
                        double from_best = p2 * best_buf[best_off + j - 1];
                        double u;
                        cur_l[out + j] =
                            from_diag >= from_best ? from_diag : from_best;
                        u = p1 * prev_u[diag + j];
                        /* Reference: u += (p2*d + cu + ps), i.e.
                         * u + (((p2 * d) + cu) + ps). */
                        u += (p2 * prev_u[diag + j - 1] + cur_u[up + j - 1])
                             + prev_u[side + j - 1];
                        cur_u[out + j] = u < 1.0 ? u : 1.0;
                    }
                    row_mass += cur_u[out + k];
                }
            }
        }
        if (x <= k && y_lo == 0)
            row_mass += cur_u[(size_t)(k1 - x) * (size_t)k1 + k];
        /* Early abort: once every upper bound in a row is 0, all later
         * rows stay 0 (mirror of Section 6.2's prefix pruning). */
        if (row_mass == 0.0) {
            for (j = 0; j < k1; j++)
                out_l[j] = out_u[j] = 0.0;
            free(heap_buf);
            return 0;
        }
        swap = prev_l; prev_l = cur_l; cur_l = swap;
        swap = prev_u; prev_u = cur_u; cur_u = swap;
    }
    {
        size_t base = (size_t)(m - n + k1) * (size_t)k1;
        for (j = 0; j < k1; j++) {
            out_l[j] = prev_l[base + j];
            out_u[j] = prev_u[base + j];
        }
    }
    free(heap_buf);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Section 5 frequency bounds (mirrors frequency_bounds_batch's body)  */
/* ------------------------------------------------------------------ */

/* E[(count - threshold)^+] from a marshalled distribution — the
 * CharCountDistribution.expected_excess_over transcription.  The
 * python reference computes `tail[0] + (-t) * survival[0]` for t <= 0
 * (int times float); association preserved. */
static double
excess_over(int32_t certain, int32_t uncertain, const double *survival,
            const double *tail, int32_t threshold)
{
    int32_t t = threshold + 1 - certain;
    if (t <= 0)
        return tail[0] + (double)(-t) * survival[0];
    if (t > uncertain)
        return 0.0;
    return tail[t];
}

/* One profile side during the merged-support walk. */
struct freq_side {
    int32_t length;
    int32_t m;                  /* support size */
    const int32_t *chars;       /* ascending code points */
    const int32_t *certain;     /* f^c per char */
    const int32_t *offs;        /* pmf offsets, m + 1 entries */
    const double *pmf;          /* S1, flattened */
    const double *survival;     /* S2, aligned with pmf */
    const double *tail;         /* S3, aligned with pmf */
};

/* The empty distribution (absent character): certain 0, pmf (1.0,). */
static const double EMPTY_ONE[1] = {1.0};

struct freq_dist {
    int32_t certain;
    int32_t uncertain;
    int32_t total;
    const double *pmf;
    const double *survival;
    const double *tail;
    int32_t pmf_len;
};

static void
load_dist(const struct freq_side *side, int32_t index, struct freq_dist *out)
{
    if (index < 0) {
        out->certain = 0;
        out->uncertain = 0;
        out->total = 0;
        out->pmf = EMPTY_ONE;
        out->survival = EMPTY_ONE;
        out->tail = EMPTY_ONE;
        out->pmf_len = 1;
        return;
    }
    out->certain = side->certain[index];
    out->pmf_len = side->offs[index + 1] - side->offs[index];
    out->uncertain = out->pmf_len - 1;
    out->total = out->certain + out->uncertain;
    out->pmf = side->pmf + side->offs[index];
    out->survival = side->survival + side->offs[index];
    out->tail = side->tail + side->offs[index];
}

/* `sum_off mass * E[(f_other - (certain + off))^+]`, the per-character
 * contribution of expected_negative (two-level accumulation: the
 * contribution is summed per character, then added to the running
 * total by the caller — same association as the reference). */
static double
char_contribution(const struct freq_dist *mine, const struct freq_dist *other)
{
    double contribution = 0.0;
    int32_t off;
    for (off = 0; off < mine->pmf_len; off++) {
        double mass = mine->pmf[off];
        if (mass == 0.0)
            continue;
        contribution += mass * excess_over(other->certain, other->uncertain,
                                           other->survival, other->tail,
                                           mine->certain + off);
    }
    return contribution;
}

/* Lemma 6 lower bound (returned) + Theorem 3 upper bound (*out_upper).
 * One merged walk over both ascending supports feeds the Lemma 6
 * counters and both expectation directions; each accumulator receives
 * its per-character adds in ascending character order, exactly like
 * the reference's repeated support walks.  Returns -2 on invalid k. */
REPRO_EXPORT int32_t
repro_frequency_bounds(int32_t l_length, int32_t l_m, const int32_t *l_chars,
                       const int32_t *l_certain, const int32_t *l_offs,
                       const double *l_pmf, const double *l_survival,
                       const double *l_tail, int32_t r_length, int32_t r_m,
                       const int32_t *r_chars, const int32_t *r_certain,
                       const int32_t *r_offs, const double *r_pmf,
                       const double *r_survival, const double *r_tail,
                       int32_t k, double *out_upper)
{
    struct freq_side left = {l_length, l_m, l_chars, l_certain, l_offs,
                             l_pmf, l_survival, l_tail};
    struct freq_side right = {r_length, r_m, r_chars, r_certain, r_offs,
                              r_pmf, r_survival, r_tail};
    int64_t positive = 0, negative = 0;
    double expected_pd = 0.0, expected_nd = 0.0;
    int32_t i = 0, j = 0;
    int64_t lower_fd;

    if (k < 0)
        return -2;
    while (i < left.m || j < right.m) {
        int32_t li = -1, ri = -1;
        struct freq_dist l_dist, r_dist;
        if (i < left.m && (j >= right.m || left.chars[i] <= right.chars[j])) {
            li = i;
            if (j < right.m && right.chars[j] == left.chars[i])
                ri = j++;
            i++;
        } else {
            ri = j++;
        }
        load_dist(&left, li, &l_dist);
        load_dist(&right, ri, &r_dist);
        /* Lemma 6. */
        if (r_dist.total < l_dist.certain)
            positive += l_dist.certain - r_dist.total;
        if (l_dist.total < r_dist.certain)
            negative += r_dist.certain - l_dist.total;
        /* E[pD] = expected_negative(right, left): walk right's pmf
         * against left's tail arrays. */
        if (l_dist.total != 0)
            expected_pd += char_contribution(&r_dist, &l_dist);
        /* E[nD] = expected_negative(left, right). */
        if (r_dist.total != 0)
            expected_nd += char_contribution(&l_dist, &r_dist);
    }
    lower_fd = positive > negative ? positive : negative;
    {
        /* Theorem 3 (chebyshev_upper_bound), association preserved. */
        int32_t diff = left.length - right.length;
        int32_t length_gap = diff < 0 ? -diff : diff;
        double a = (double)length_gap / 2.0
                   + (expected_pd + expected_nd) / 2.0;
        if (a <= (double)k) {
            *out_upper = 1.0;
        } else {
            double min_term;
            double left_nd = (double)left.length * expected_nd;
            double right_pd = (double)right.length * expected_pd;
            double b_squared;
            min_term = left_nd <= right_pd ? left_nd : right_pd;
            b_squared = (double)((int64_t)diff * (int64_t)diff) / 2.0
                        + (double)length_gap * (expected_pd + expected_nd)
                              / 2.0
                        + min_term - a * a;
            if (b_squared <= 0.0) {
                *out_upper = 0.0;
            } else {
                /* Reference: b2 / (b2 + (a - k) ** 2); CPython's
                 * float ** 2 is libm pow(x, 2.0). */
                *out_upper = b_squared
                             / (b_squared + repro_pow(a - (double)k, 2.0));
            }
        }
    }
    return (int32_t)lower_fd;
}
