"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either a
seed, an existing ``random.Random``, or ``None`` (fresh nondeterministic
generator); :func:`ensure_rng` normalizes all three.
"""

from __future__ import annotations

import random


def ensure_rng(rng: random.Random | int | None) -> random.Random:
    """Return a ``random.Random`` for any accepted ``rng`` spelling.

    ``None`` yields a freshly seeded generator, an ``int`` seeds a new
    generator deterministically, and an existing generator is passed through
    unchanged (so callers can share one stream).
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"rng must be None, int, or random.Random, got {type(rng).__name__}")
