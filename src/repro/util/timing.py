"""A tiny stopwatch used by the join pipeline to attribute time per stage."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulates wall-clock time across multiple start/stop intervals.

    Used by :class:`repro.core.stats.JoinStatistics` to report per-filter
    timings the way the paper's Figures 2–9 do.
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing; returns self so it can be chained."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the total elapsed seconds so far."""
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self._elapsed

    def add(self, seconds: float) -> None:
        """Fold externally measured time into this stopwatch's total."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._elapsed += seconds

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including a currently running interval)."""
        if self._started_at is not None:
            return self._elapsed + (time.perf_counter() - self._started_at)
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
