"""A tiny stopwatch used by the join pipeline to attribute time per stage."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulates wall-clock time across multiple start/stop intervals.

    Used by :class:`repro.core.stats.JoinStatistics` to report per-filter
    timings the way the paper's Figures 2–9 do.

    Start/stop pairs may nest (e.g. two ``with stats.timer("x")`` blocks
    for the same stage, one inside the other): a depth counter tracks the
    nesting and only the outermost ``stop()`` accrues the interval, so
    the outer block's tail is never lost and no time is double-counted.
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: float | None = None
        self._depth = 0

    def start(self) -> "Stopwatch":
        """Begin (or re-enter) timing; returns self so it can be chained."""
        self._depth += 1
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Leave one nesting level; the outermost stop accrues the time.

        Returns the total elapsed seconds accumulated so far.
        """
        if self._depth > 0:
            self._depth -= 1
        if self._depth == 0 and self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self._elapsed

    @property
    def depth(self) -> int:
        """Current nesting depth (0 when the stopwatch is not running)."""
        return self._depth

    def add(self, seconds: float) -> None:
        """Fold externally measured time into this stopwatch's total."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._elapsed += seconds

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including a currently running interval)."""
        if self._started_at is not None:
            return self._elapsed + (time.perf_counter() - self._started_at)
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
