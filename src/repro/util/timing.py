"""A tiny stopwatch used by the join pipeline to attribute time per stage."""

from __future__ import annotations

import threading
import time
from typing import Any


class Stopwatch:
    """Accumulates wall-clock time across multiple start/stop intervals.

    Used by :class:`repro.core.stats.JoinStatistics` to report per-filter
    timings the way the paper's Figures 2–9 do.

    Start/stop pairs may nest (e.g. two ``with stats.timer("x")`` blocks
    for the same stage, one inside the other): a depth counter tracks the
    nesting and only the outermost ``stop()`` accrues the interval, so
    the outer block's tail is never lost and no time is double-counted.

    All state transitions are lock-guarded, so concurrent threads timing
    the same stage (a served request fan-out) can never lose an update
    or leave the depth counter torn. Concurrent intervals accrue like
    nested ones — the first ``start`` opens the interval and the last
    ``stop`` closes it (their *union*, not their sum), which is the
    meaningful wall-clock attribution for overlapping work in one
    process. The lock is deliberately not part of the pickled state:
    stopwatches cross process boundaries inside band results, and each
    process re-creates its own lock on unpickle.
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: float | None = None
        self._depth = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def start(self) -> "Stopwatch":
        """Begin (or re-enter) timing; returns self so it can be chained."""
        with self._lock:
            self._depth += 1
            if self._started_at is None:
                self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Leave one nesting level; the outermost stop accrues the time.

        Returns the total elapsed seconds accumulated so far.
        """
        with self._lock:
            if self._depth > 0:
                self._depth -= 1
            if self._depth == 0 and self._started_at is not None:
                self._elapsed += time.perf_counter() - self._started_at
                self._started_at = None
            return self._elapsed

    @property
    def depth(self) -> int:
        """Current nesting depth (0 when the stopwatch is not running)."""
        return self._depth

    def add(self, seconds: float) -> None:
        """Fold externally measured time into this stopwatch's total."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        with self._lock:
            self._elapsed += seconds

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including a currently running interval)."""
        with self._lock:
            if self._started_at is not None:
                return self._elapsed + (time.perf_counter() - self._started_at)
            return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
