"""Argument-validation helpers used across the library.

All validators raise ``ValueError``/``TypeError`` with messages naming the
offending argument, so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Any


def check_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )


def check_non_negative(value: int | float, name: str) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_positive(value: int | float, name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_probability(value: float, name: str, tolerance: float = 1e-9) -> None:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]`` (within tolerance)."""
    if not (-tolerance <= value <= 1.0 + tolerance):
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
