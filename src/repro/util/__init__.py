"""Small shared utilities: validation helpers, RNG plumbing, timers."""

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)
from repro.util.faults import FaultPlan, FaultSpec, InjectedCrashError
from repro.util.rng import ensure_rng
from repro.util.timing import Stopwatch

__all__ = [
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "ensure_rng",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "Stopwatch",
]
