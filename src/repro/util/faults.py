"""Deterministic, config-driven fault injection for the band executor.

A :class:`FaultPlan` schedules faults against specific *(band, attempt)*
coordinates, so a test or benchmark can say "the first two attempts of
band 2 crash" and get exactly that, independent of scheduling, worker
count, or process reuse. The executor consults the plan once per band
call; an attempt not covered by any spec runs normally.

Four fault kinds:

``crash``
    Raise :class:`InjectedCrashError` from inside the band call — the
    failure mode of a bug in band code.
``abort``
    ``os._exit`` the executing process — the failure mode of a worker
    killed by the OS (OOM, segfault); in a process pool this breaks the
    pool (``BrokenProcessPool``). Never use in-process: it terminates
    the caller.
``hang``
    Sleep ``seconds`` before running the band — the failure mode of a
    stuck worker; with a per-band timeout configured the deadline fires
    first.
``corrupt``
    Make the band call return garbage instead of a band result — the
    failure mode of silent data corruption in transit.

The serve layer (:mod:`repro.serve`) reuses the same plan/spec
machinery against its *request path*: the target index is the 0-based
request arrival order instead of a band index, and three
request-targeted kinds join the grammar — ``slow@I/SECONDS`` (stall
request ``I`` mid-handling while its deadline keeps running),
``drop@I`` (close the connection without a response), and
``corrupt-resp@I`` (send a garbled response body). ``crash`` doubles
as a request fault (an exception inside the handler, which must
surface as a typed 500, never kill the server); the band executor
ignores the request-only kinds, so one spec string can drive both
layers.

The textual spec format (CLI ``--inject-faults``, config
``fault_spec``) is a comma-separated list of ``KIND@BAND`` entries with
optional ``xTIMES`` (how many attempts fault, starting from the first;
default 1) and ``/SECONDS`` (hang duration, default 3600)::

    crash@2            # band 2, first attempt raises
    crash@2x3          # band 2, attempts 0-2 raise
    hang@0x2/1.5       # band 0, attempts 0-1 sleep 1.5s
    corrupt@1,crash@3  # two faults, two bands

A target may be *shard-qualified* with an ``sSHARD:`` prefix on the
band: ``crash@s1:2x3`` fires only inside shard 1 of a ``--shard``-mode
run (and never in a non-sharded run). The shard driver narrows the plan
with :meth:`FaultPlan.narrowed` before handing it to the executor, so
the byte-identity-under-faults tests extend to the shard backend.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass

#: Band-executor fault kinds (injected inside ``_band_call``).
BAND_KINDS = ("crash", "abort", "hang", "corrupt")
#: Request-path fault kinds (interpreted by the serve layer, targeted
#: by request arrival index instead of band index): ``slow`` stalls the
#: request ``seconds`` before processing (its deadline keeps running),
#: ``drop`` closes the connection without a response, ``corrupt-resp``
#: sends a deliberately garbled response body. The band executor
#: treats them as no-ops, so one spec string can drive both layers.
REQUEST_KINDS = ("slow", "drop", "corrupt-resp")
KINDS = BAND_KINDS + REQUEST_KINDS

_SPEC_PATTERN = re.compile(
    r"^(?P<kind>[a-z][a-z-]*)@(?:s(?P<shard>\d+):)?(?P<band>\d+)"
    r"(?:x(?P<times>\d+))?"
    r"(?:/(?P<seconds>\d+(?:\.\d+)?))?$"
)


class InjectedCrashError(RuntimeError):
    """The failure raised by a scheduled ``crash`` fault."""

    def __init__(self, band: int, attempt: int) -> None:
        super().__init__(f"injected crash: band {band}, attempt {attempt}")
        self.band = band
        self.attempt = attempt

    def __reduce__(
        self,
    ) -> tuple[type["InjectedCrashError"], tuple[int, int]]:
        return type(self), (self.band, self.attempt)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``kind`` hits ``band`` on attempts ``< times``.

    ``shard`` is ``None`` for an unqualified spec (fires in any
    non-shard-narrowed run). A shard-qualified spec (``crash@s1:2``)
    carries its target shard and *never* fires directly — the shard
    driver must first narrow the plan (:meth:`FaultPlan.narrowed`) to
    strip the qualifier for specs aimed at the running shard.
    """

    kind: str
    band: int
    times: int = 1
    seconds: float = 3600.0
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if self.band < 0:
            raise ValueError(f"band must be non-negative, got {self.band}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.seconds <= 0:
            raise ValueError(f"seconds must be positive, got {self.seconds}")
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"shard must be non-negative, got {self.shard}")

    def matches(self, band: int, attempt: int) -> bool:
        """Whether this spec fires for ``band`` on 0-based ``attempt``.

        Shard-qualified specs never match here; they only become live
        after :meth:`FaultPlan.narrowed` resolves them for their shard.
        """
        return (
            self.shard is None
            and band == self.band
            and 0 <= attempt < self.times
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec`s.

    Picklable by construction, so it travels into pool workers with the
    band payload and the *worker* decides whether to fault — no shared
    state, no race with retries landing on reused processes.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def from_spec(cls, text: str | None) -> "FaultPlan":
        """Parse the ``KIND@[sSHARD:]BAND[xTIMES][/SECONDS]`` comma list.

        ``None`` or an empty/whitespace string yields an empty plan.
        """
        if text is None or not text.strip():
            return cls()
        specs: list[FaultSpec] = []
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            match = _SPEC_PATTERN.match(entry)
            if match is None:
                raise ValueError(
                    f"bad fault spec {entry!r}; expected "
                    "KIND@[sSHARD:]BAND[xTIMES][/SECONDS], e.g. 'crash@2x3', "
                    "'hang@0/1.5', or 'crash@s1:2x3'"
                )
            specs.append(
                FaultSpec(
                    kind=match["kind"],
                    band=int(match["band"]),
                    times=int(match["times"]) if match["times"] else 1,
                    seconds=float(match["seconds"])
                    if match["seconds"]
                    else 3600.0,
                    shard=int(match["shard"])
                    if match["shard"] is not None
                    else None,
                )
            )
        return cls(tuple(specs))

    def fault_for(self, band: int, attempt: int) -> FaultSpec | None:
        """The first spec that fires for ``(band, attempt)``, if any."""
        for spec in self.specs:
            if spec.matches(band, attempt):
                return spec
        return None

    def request_fault(self, request_index: int) -> FaultSpec | None:
        """The first spec firing for the request path's coordinates.

        The serve layer targets faults by 0-based request arrival
        index; a request has exactly one attempt, so only attempt 0 is
        consulted. Shard-qualified specs stay inert here too.
        """
        return self.fault_for(request_index, 0)

    def narrowed(self, shard_index: int) -> "FaultPlan":
        """The plan as seen from inside shard ``shard_index``.

        Unqualified specs pass through unchanged; specs qualified for
        this shard are kept with the qualifier stripped (making them
        live); specs qualified for other shards are dropped. Band
        indices stay *global* — the shard executes its slice under the
        plan-wide band numbering, so ``crash@s1:2`` targets global band
        2, which must lie inside shard 1's slice to ever fire.
        """
        kept: list[FaultSpec] = []
        for spec in self.specs:
            if spec.shard is None:
                kept.append(spec)
            elif spec.shard == shard_index:
                kept.append(
                    FaultSpec(
                        kind=spec.kind,
                        band=spec.band,
                        times=spec.times,
                        seconds=spec.seconds,
                    )
                )
        return FaultPlan(tuple(kept))


def inject(spec: FaultSpec, attempt: int) -> None:
    """Execute a scheduled fault at its injection site.

    ``crash`` raises, ``abort`` kills the current process, ``hang``
    sleeps (then returns — a hang is a delay, the band still runs);
    ``corrupt`` is a no-op here because the *caller* must fabricate the
    garbage return value. The request-only kinds (``slow``, ``drop``,
    ``corrupt-resp``) are no-ops too: the serve layer interprets them
    at its own injection sites.
    """
    if spec.kind == "crash":
        raise InjectedCrashError(spec.band, attempt)
    if spec.kind == "abort":
        os._exit(70)
    if spec.kind == "hang":
        time.sleep(spec.seconds)
