"""Crash-atomic file writes: one idiom, shared by every persister.

The checkpoint store, the index persistence layer, and the SQLite
store builder all have the same durability contract: a reader must
never observe a half-written file — after a crash the target either
holds the complete previous content or the complete new content.
POSIX gives exactly that through a same-directory tmp file plus
``os.replace``; this module owns the idiom so the layers cannot drift
(the pre-PR ``save_index`` had grown its own copy without a unique tmp
name, so two concurrent savers could clobber each other's tmp file).

``fsync=True`` additionally flushes file contents to stable storage
before the rename, upgrading the guarantee from "atomic against
process crashes" to "atomic against power loss" at the cost of one
sync per write. The checkpoint layer keeps the default (process-crash
atomicity is its documented contract and bands are re-runnable); the
index/store builders sync, because a corrupt artifact there silently
poisons every later run.
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_bytes(
    path: str | Path, data: bytes, fsync: bool = False
) -> None:
    """Write ``data`` to ``path`` so readers see old-or-new, never half.

    The tmp file lives next to the target (same filesystem, so the
    rename is atomic) under a pid-unique name (so concurrent writers
    of the same target cannot truncate each other mid-write; last
    rename wins whole). On any write failure the tmp file is removed
    and the target is left untouched.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(
    path: str | Path, text: str, fsync: bool = False
) -> None:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
