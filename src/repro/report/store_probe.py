"""Child process of the out-of-core store benchmark.

Runs ONE join leg — ``store`` (out-of-core, ``SqliteStore``) or
``memory`` (classic in-memory driver) — under a hard address-space
ceiling and reports a JSON document on stdout::

    python -m repro.report.store_probe store  INPUT_PATH K Q TAU MARGIN
    python -m repro.report.store_probe memory INPUT_PATH K Q TAU MARGIN

``INPUT_PATH`` is a store file for the ``store`` leg and a collection
file for the ``memory`` leg. ``MARGIN`` (bytes) is the memory budget
*above the interpreter's own baseline*: the child reads its current
address-space size, adds the margin, and installs the sum as
``RLIMIT_AS`` — so the same margin means the same usable budget on any
machine, regardless of how much address space the interpreter maps at
startup. An allocation beyond the ceiling raises ``MemoryError``,
which the child folds into ``{"completed": false, ...}`` instead of a
traceback; the parent asserts that the store leg completes and the
in-memory leg does not, under the *same* budget.

The document always carries ``peak_rss_bytes`` (sampled live RSS — see
:class:`_RssSampler` for why ``ru_maxrss`` cannot be trusted here) so
the recorded ``BENCH_9.json`` ties the headline claim to a measured
number. On platforms without ``/proc/self/statm`` the ceiling cannot
be anchored to the baseline; the child then runs unlimited and reports
``"limited": false`` so the parent can skip the must-fail assertion
rather than mis-assert.
"""

from __future__ import annotations

import json
import resource
import sys
import threading
import time
from typing import Any


def _address_space_bytes() -> "int | None":
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[0])
    except OSError:
        return None
    return pages * resource.getpagesize()


class _RssSampler:
    """Peak resident-set size by periodic ``/proc/self/statm`` samples.

    ``getrusage().ru_maxrss`` is useless here: Linux carries the
    high-water mark across ``exec``, so a child spawned by a parent
    that once held the whole collection would report the *parent's*
    peak. Sampling the live RSS from a daemon thread measures only
    this process; sub-interval transients are missed, which is fine
    for a benchmark bound that the RLIMIT enforces exactly anyway.
    """

    def __init__(self, interval: float = 0.05) -> None:
        self.interval = interval
        self.peak = 0
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def _sample(self) -> None:
        try:
            with open("/proc/self/statm", encoding="ascii") as handle:
                resident = int(handle.read().split()[1])
        except OSError:
            return
        self.peak = max(self.peak, resident * resource.getpagesize())

    def start(self) -> "_RssSampler":
        def loop() -> None:
            while not self._stop.wait(self.interval):
                self._sample()

        self._sample()
        self._thread = threading.Thread(
            target=loop, name="rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> int:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._sample()
        return self.peak


def _run_store(path: str, k: int, q: int, tau: float) -> int:
    from repro.core.config import JoinConfig
    from repro.store.driver import store_similarity_join
    from repro.store.sqlite import SqliteStore

    config = JoinConfig.for_algorithm(
        "QFCT", k=k, tau=tau, q=q, report_probabilities=True
    )
    outcome = store_similarity_join(SqliteStore(path), config)
    return len(outcome.pairs)


def _run_memory(path: str, k: int, q: int, tau: float) -> int:
    from repro.core.config import JoinConfig
    from repro.core.join import similarity_join
    from repro.datasets.loader import load_collection

    config = JoinConfig.for_algorithm(
        "QFCT", k=k, tau=tau, q=q, report_probabilities=True
    )
    outcome = similarity_join(load_collection(path), config)
    return len(outcome.pairs)


def main(argv: "list[str] | None" = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    mode, path = args[0], args[1]
    k, q, tau, margin = int(args[2]), int(args[3]), float(args[4]), int(args[5])

    sampler = _RssSampler().start()
    baseline = _address_space_bytes()
    limited = baseline is not None
    limit_bytes = None
    if limited:
        assert baseline is not None
        limit_bytes = baseline + margin
        resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, limit_bytes))

    document: dict[str, Any] = {
        "mode": mode,
        "limited": limited,
        "baseline_bytes": baseline,
        "limit_bytes": limit_bytes,
        "margin_bytes": margin,
    }
    start = time.perf_counter()
    try:
        runner = _run_store if mode == "store" else _run_memory
        pairs = runner(path, k, q, tau)
    except MemoryError:
        document.update(completed=False, error="MemoryError", pairs=None)
    except Exception as exc:  # noqa: BLE001 - sqlite may wrap the OOM
        document.update(
            completed=False,
            error=f"{type(exc).__name__}: {exc}"[:300],
            pairs=None,
        )
    else:
        document.update(completed=True, error=None, pairs=pairs)
    document["seconds"] = time.perf_counter() - start
    document["peak_rss_bytes"] = sampler.stop()
    json.dump(document, sys.stdout)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
