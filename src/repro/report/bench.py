"""Benchmark runner: hot-kernel micro-benchmarks + end-to-end joins.

One registry of kernel cases (:data:`KERNELS`) is shared by

* ``benchmarks/test_micro_kernels.py`` — the pytest-benchmark suite,
* ``python -m benchmarks.run`` / ``repro-join bench`` — the JSON runner
  behind the committed ``BENCH_5.json`` trajectory file, and
* the CI regression gate (``--check``), which fails the build when a
  kernel regresses by more than :data:`DEFAULT_TOLERANCE` × against the
  committed baseline.

Timing is plain ``perf_counter`` batching: each kernel callable is run
in growing batches until :data:`MIN_MEASURE_SECONDS` of wall clock is
accumulated, and ns/op is elapsed over logical operations (one kernel
invocation = ``ops`` operations, so e.g. a 100-pair sweep counts 100).
The end-to-end join benchmark reports pairs/sec over the
length-eligible pair universe — the throughput number the ROADMAP's
"fast as the hardware allows" goal tracks.
"""

from __future__ import annotations

import json
import random
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

#: Wall-clock floor per kernel measurement (seconds).
MIN_MEASURE_SECONDS = 0.25
#: Allowed slowdown vs. the committed baseline before --check fails.
DEFAULT_TOLERANCE = 2.0
#: Collection size of the end-to-end join benchmark (quick mode halves it).
JOIN_SIZE = 300

#: Out-of-core headline (DESIGN.md §6i): collection sizes of the
#: store-vs-memory contrast. Both joins run under the SAME address-space
#: budget (:data:`STORE_MARGIN_BYTES` above the interpreter baseline);
#: the SqliteStore leg must complete, the in-memory leg must hit
#: MemoryError. The quick size keeps the CI leg under a minute while
#: still sitting ~1.5x beyond what the in-memory driver can fit in the
#: margin; the full size is the recorded 100k-string headline.
STORE_SIZE = 100_000
STORE_SIZE_QUICK = 30_000
STORE_MARGIN_BYTES = 256 * 1024 * 1024
#: Join knobs of the out-of-core contrast — deliberately cheap per
#: string (k=1 → two segments, q=4 → rare words, low theta upstream) so
#: a 100k-string pure-python join finishes in minutes; memory behaviour,
#: not verification throughput, is what this benchmark gates.
STORE_JOIN_K = 1
STORE_JOIN_Q = 4
STORE_JOIN_TAU = 0.3

BenchFn = Callable[[], Any]


@dataclass(frozen=True)
class KernelCase:
    """One micro-benchmark: ``setup()`` → (callable, logical ops per call).

    ``requires`` names an optional backend dependency (``"numpy"`` or
    ``"native"``); when it is unavailable the runner records the case
    under ``skipped_kernels`` instead of failing, and the regression
    gate tolerates its absence. The suite document's ``backends``
    section records *why* each optional backend is or is not usable, so
    a skip is attributable from the JSON alone.
    """

    name: str
    setup: Callable[[], tuple[BenchFn, int]]
    requires: str | None = None


def _requirement_available(requirement: str | None) -> bool:
    if requirement is None:
        return True
    if requirement == "numpy":
        from repro.filters.batch_numpy import numpy_available

        return numpy_available()
    if requirement == "native":
        from repro.filters._native import native_available

        return native_available()
    return False


def _dblp(size: int, theta: float = 0.2, cap: int = 8):
    from repro.datasets import dblp_like_collection

    return dblp_like_collection(
        size, theta=theta, rng=1234, max_uncertain_positions=cap
    )


def _length_compatible_pairs(collection, k: int, count: int):
    """Deterministic sample of length-eligible pairs from ``collection``."""
    eligible = [
        (left, right)
        for i, left in enumerate(collection)
        for right in collection[i + 1 :]
        if abs(len(left) - len(right)) <= k
    ]
    rng = random.Random(99)
    rng.shuffle(eligible)
    return eligible[:count]


def _setup_cdf_filter() -> tuple[BenchFn, int]:
    """CDF-bound filter over a mixed certain/uncertain pair sample."""
    from repro.filters.cdf import cdf_bounds

    pairs = _length_compatible_pairs(_dblp(60), k=2, count=40)

    def run():
        for left, right in pairs:
            cdf_bounds(left, right, 2)

    return run, len(pairs)


def _setup_cdf_dp_uncertain() -> tuple[BenchFn, int]:
    """CDF DP on uncertain×uncertain pairs (no certain fast path)."""
    from repro.filters.cdf import cdf_bounds

    uncertain = [s for s in _dblp(120) if not s.is_certain]
    pairs = _length_compatible_pairs(uncertain, k=2, count=20)

    def run():
        for left, right in pairs:
            cdf_bounds(left, right, 2)

    return run, len(pairs)


def _setup_banded_edit_k2() -> tuple[BenchFn, int]:
    from repro.distance.edit import edit_distance_banded

    rng = random.Random(0)
    words = [
        "".join(rng.choice("abcdefgh") for _ in range(40)) for _ in range(20)
    ]
    pairs = [(a, b) for a in words[:10] for b in words[10:]]

    def run():
        for a, b in pairs:
            edit_distance_banded(a, b, 2)

    return run, len(pairs)


def _setup_frequency_filter() -> tuple[BenchFn, int]:
    """Lemma 6 + Theorem 3 over prebuilt profiles (the per-pair cost)."""
    from repro.filters.frequency import FrequencyDistanceFilter, FrequencyProfile

    collection = _dblp(60)
    profiles = [FrequencyProfile(s) for s in collection]
    pairs = [
        (profiles[i], profiles[j])
        for i, left in enumerate(collection)
        for j in range(i + 1, len(collection))
        if abs(len(left) - len(collection[j])) <= 2
    ][:60]
    fltr = FrequencyDistanceFilter(2)

    def run():
        for left, right in pairs:
            fltr.decide(left, right, 0.1)

    return run, len(pairs)


def _batch_workload(k: int = 2, size: int = 900, cap: int = 240):
    """One uncertain probe + a large length-eligible candidate block.

    The batch kernels amortize per-pair python overhead across a block,
    so they are measured where the engine actually uses them: one probe
    refined against a couple hundred candidates at once.
    """
    collection = _dblp(size, theta=0.3)
    probe = next(s for s in collection if not s.is_certain)
    block = [s for s in collection if abs(len(s) - len(probe)) <= k][:cap]
    return probe, block


def _setup_cdf_batch_python() -> tuple[BenchFn, int]:
    """Reference block CDF kernel (python backend)."""
    from repro.filters.cdf import cdf_bounds_batch

    probe, block = _batch_workload()

    def run():
        cdf_bounds_batch(probe, block, 2)

    return run, len(block)


def _setup_cdf_batch_numpy() -> tuple[BenchFn, int]:
    """Vectorized block CDF kernel (numpy backend)."""
    from repro.filters.batch_numpy import cdf_bounds_batch_numpy

    probe, block = _batch_workload()

    def run():
        cdf_bounds_batch_numpy(probe, block, 2)

    return run, len(block)


def _setup_frequency_batch_python() -> tuple[BenchFn, int]:
    """Reference block frequency kernel (python backend)."""
    from repro.filters.frequency import FrequencyProfile, frequency_bounds_batch

    probe, block = _batch_workload()
    left = FrequencyProfile(probe)
    rights = [FrequencyProfile(s) for s in block]

    def run():
        frequency_bounds_batch(left, rights, 2)

    return run, len(block)


def _setup_frequency_batch_numpy() -> tuple[BenchFn, int]:
    """Vectorized block frequency kernel (numpy backend)."""
    from repro.filters.batch_numpy import frequency_bounds_batch_numpy
    from repro.filters.frequency import FrequencyProfile

    probe, block = _batch_workload()
    left = FrequencyProfile(probe)
    rights = [FrequencyProfile(s) for s in block]

    def run():
        frequency_bounds_batch_numpy(left, rights, 2)

    return run, len(block)


def _setup_cdf_filter_native() -> tuple[BenchFn, int]:
    """Compiled CDF bounds over the ``cdf_filter`` pair sample.

    Features are prebuilt so the marshalled packs are cached, exactly
    as the engine holds them on :class:`StringFeatures` across probes.
    """
    from repro.core.context import StringFeatures
    from repro.filters._native import cdf_bounds_native

    pairs = _length_compatible_pairs(_dblp(60), k=2, count=40)
    features = {id(s): StringFeatures(s) for pair in pairs for s in pair}

    def run():
        for left, right in pairs:
            cdf_bounds_native(
                left, right, 2, features[id(left)], features[id(right)]
            )

    return run, len(pairs)


def _setup_cdf_dp_uncertain_native() -> tuple[BenchFn, int]:
    """Compiled CDF DP on the ``cdf_dp_uncertain`` pair sample."""
    from repro.core.context import StringFeatures
    from repro.filters._native import cdf_bounds_native

    uncertain = [s for s in _dblp(120) if not s.is_certain]
    pairs = _length_compatible_pairs(uncertain, k=2, count=20)
    features = {id(s): StringFeatures(s) for pair in pairs for s in pair}

    def run():
        for left, right in pairs:
            cdf_bounds_native(
                left, right, 2, features[id(left)], features[id(right)]
            )

    return run, len(pairs)


def _setup_frequency_filter_native() -> tuple[BenchFn, int]:
    """Compiled Lemma 6 + Theorem 3 over prebuilt profiles."""
    from repro.filters._native import frequency_bounds_native
    from repro.filters.frequency import FrequencyProfile

    collection = _dblp(60)
    profiles = [FrequencyProfile(s) for s in collection]
    pairs = [
        (profiles[i], profiles[j])
        for i, left in enumerate(collection)
        for j in range(i + 1, len(collection))
        if abs(len(left) - len(collection[j])) <= 2
    ][:60]

    def run():
        for left, right in pairs:
            frequency_bounds_native(left, right, 2)

    return run, len(pairs)


def _setup_banded_edit_k2_native() -> tuple[BenchFn, int]:
    """Compiled banded edit distance on the ``banded_edit_k2`` words."""
    from repro.filters._native import edit_banded_native

    rng = random.Random(0)
    words = [
        "".join(rng.choice("abcdefgh") for _ in range(40)) for _ in range(20)
    ]
    pairs = [(a, b) for a in words[:10] for b in words[10:]]

    def run():
        for a, b in pairs:
            edit_banded_native(a, b, 2)

    return run, len(pairs)


def _setup_cdf_batch_native() -> tuple[BenchFn, int]:
    """Compiled block CDF kernel (native backend)."""
    from repro.core.context import StringFeatures
    from repro.filters._native import cdf_bounds_batch_native

    probe, block = _batch_workload()
    probe_features = StringFeatures(probe)
    block_features = [StringFeatures(s) for s in block]

    def run():
        cdf_bounds_batch_native(
            probe, block, 2, probe_features, block_features
        )

    return run, len(block)


def _setup_frequency_batch_native() -> tuple[BenchFn, int]:
    """Compiled block frequency kernel (native backend)."""
    from repro.filters._native import frequency_bounds_batch_native
    from repro.filters.frequency import FrequencyProfile

    probe, block = _batch_workload()
    left = FrequencyProfile(probe)
    rights = [FrequencyProfile(s) for s in block]

    def run():
        frequency_bounds_batch_native(left, rights, 2)

    return run, len(block)


def _setup_profile_build() -> tuple[BenchFn, int]:
    from repro.filters.frequency import FrequencyProfile

    collection = _dblp(60)

    def run():
        for string in collection:
            FrequencyProfile(string)

    return run, len(collection)


def _setup_trie_verify_pair() -> tuple[BenchFn, int]:
    from repro.verify.trie import build_trie
    from repro.verify.trie_verify import trie_verify

    collection = [s for s in _dblp(80) if not s.is_certain]
    left = collection[0]
    trie = build_trie(left)
    right = min(collection[1:], key=lambda s: abs(len(s) - len(left)))

    def run():
        trie_verify(left, right, 2, left_trie=trie)

    return run, 1


KERNELS: tuple[KernelCase, ...] = (
    KernelCase("cdf_filter", _setup_cdf_filter),
    KernelCase("cdf_dp_uncertain", _setup_cdf_dp_uncertain),
    KernelCase("banded_edit_k2", _setup_banded_edit_k2),
    KernelCase("frequency_filter", _setup_frequency_filter),
    KernelCase("profile_build", _setup_profile_build),
    KernelCase("trie_verify_pair", _setup_trie_verify_pair),
    KernelCase("cdf_batch_python", _setup_cdf_batch_python),
    KernelCase("cdf_batch_numpy", _setup_cdf_batch_numpy, requires="numpy"),
    KernelCase("frequency_batch_python", _setup_frequency_batch_python),
    KernelCase(
        "frequency_batch_numpy", _setup_frequency_batch_numpy, requires="numpy"
    ),
    KernelCase(
        "cdf_filter_native", _setup_cdf_filter_native, requires="native"
    ),
    KernelCase(
        "cdf_dp_uncertain_native",
        _setup_cdf_dp_uncertain_native,
        requires="native",
    ),
    KernelCase(
        "frequency_filter_native",
        _setup_frequency_filter_native,
        requires="native",
    ),
    KernelCase(
        "banded_edit_k2_native",
        _setup_banded_edit_k2_native,
        requires="native",
    ),
    KernelCase(
        "cdf_batch_native", _setup_cdf_batch_native, requires="native"
    ),
    KernelCase(
        "frequency_batch_native",
        _setup_frequency_batch_native,
        requires="native",
    ),
)

#: reference/accelerated kernel pairs whose ns/op ratio becomes
#: ``backend_speedup["<workload>:<backend>"]``. The ``cdf*:native``
#: entries are also ordering invariants of the regression gate: a
#: built native backend that is *slower* than the python reference on
#: the CDF kernels fails ``--check`` outright (no baseline needed).
_BACKEND_PAIRS: tuple[tuple[str, str, str], ...] = (
    ("cdf_filter:numpy", "cdf_batch_python", "cdf_batch_numpy"),
    (
        "frequency_filter:numpy",
        "frequency_batch_python",
        "frequency_batch_numpy",
    ),
    ("cdf_filter:native", "cdf_filter", "cdf_filter_native"),
    ("cdf_dp_uncertain:native", "cdf_dp_uncertain", "cdf_dp_uncertain_native"),
    ("frequency_filter:native", "frequency_filter", "frequency_filter_native"),
    ("banded_edit_k2:native", "banded_edit_k2", "banded_edit_k2_native"),
    ("cdf_batch:native", "cdf_batch_python", "cdf_batch_native"),
    ("frequency_batch:native", "frequency_batch_python", "frequency_batch_native"),
)


def backend_speedups(kernels: dict) -> dict[str, float]:
    """Reference ns/op over accelerated ns/op per (workload, backend)
    pair (> 1 means the accelerated backend is faster)."""
    out: dict[str, float] = {}
    for target, reference_name, accel_name in _BACKEND_PAIRS:
        reference_row = kernels.get(reference_name)
        accel_row = kernels.get(accel_name)
        if reference_row and accel_row and accel_row["ns_per_op"] > 0:
            out[target] = reference_row["ns_per_op"] / accel_row["ns_per_op"]
    return out


def _cdf_cache_delta(before: dict[str, int]) -> dict[str, int]:
    """Per-case growth of the monotone CDF memo-table counters."""
    from repro.filters.cdf import cdf_cache_stats

    after = cdf_cache_stats()
    return {name: after[name] - before[name] for name in before}


def measure_kernel(case: KernelCase, min_seconds: float = MIN_MEASURE_SECONDS) -> dict:
    """ns/op for one kernel case, batched to at least ``min_seconds``.

    The CDF memo tables are cleared first so every case starts cold and
    cases cannot warm each other's caches (ordering of the registry
    must not change a measurement); the case's own hit/miss traffic is
    recorded as a counter delta under ``cdf_cache``.
    """
    from repro.filters.cdf import cdf_cache_stats, clear_cdf_caches

    clear_cdf_caches()
    cache_before = cdf_cache_stats()
    fn, ops = case.setup()
    fn()  # warm caches (boundary-cell memo, dataset construction)
    calls = 0
    elapsed = 0.0
    batch = 1
    while elapsed < min_seconds:
        start = time.perf_counter()
        for _ in range(batch):
            fn()
        elapsed += time.perf_counter() - start
        calls += batch
        batch = min(batch * 2, 64)
    ns_per_op = elapsed * 1e9 / (calls * ops)
    return {
        "ns_per_op": ns_per_op,
        "calls": calls,
        "ops_per_call": ops,
        "cdf_cache": _cdf_cache_delta(cache_before),
    }


def measure_join(
    workers: int,
    size: int = JOIN_SIZE,
    repeats: int = 3,
    backend: str = "python",
    algorithm: str = "QFCT",
) -> dict:
    """End-to-end join (k=2, τ=0.1): seconds and pairs/sec.

    The join runs ``repeats`` times and the **median** attempt (by
    throughput) is reported — single runs are far too noisy to gate on
    when worker processes contend for the host's cores. The CDF memo
    tables are cleared before each attempt (cold-cache joins, like the
    kernel cases) and the per-case counter delta is reported under
    ``cdf_cache``. Each attempt also records per-stage wall clock
    (``stage_seconds``): total end-to-end time on the QFCT cascade is
    dominated by trie verification, so a kernel backend's effect is
    *measurable* in the frequency/cdf stage timers even when the total
    sits inside run-to-run noise.
    """
    from repro.core.config import JoinConfig
    from repro.core.join import similarity_join
    from repro.filters.cdf import cdf_cache_stats, clear_cdf_caches

    collection = _dblp(size)
    config = JoinConfig.for_algorithm(
        algorithm, k=2, tau=0.1, q=3, workers=workers, backend=backend
    )
    cache_before = cdf_cache_stats()
    attempts = []
    for _ in range(max(1, repeats)):
        clear_cdf_caches()
        start = time.perf_counter()
        outcome = similarity_join(collection, config)
        seconds = time.perf_counter() - start
        eligible = outcome.stats.stage_count("length", "eligible")
        attempts.append(
            {
                "workers": workers,
                "backend": backend,
                "algorithm": algorithm,
                "size": size,
                "seconds": seconds,
                "stage_seconds": {
                    name: watch.elapsed
                    for name, watch in outcome.stats.timers.items()
                },
                "result_pairs": len(outcome.pairs),
                "eligible_pairs": eligible,
                "pairs_per_sec": eligible / seconds if seconds > 0 else 0.0,
            }
        )
    attempts.sort(key=lambda row: row["pairs_per_sec"])
    median = dict(attempts[len(attempts) // 2])
    median["attempts"] = [row["pairs_per_sec"] for row in attempts]
    median["cdf_cache"] = _cdf_cache_delta(cache_before)
    return median


def _run_store_probe(
    mode: str, input_path: str, margin: int
) -> dict:
    """One out-of-core leg in a fresh subprocess (see ``store_probe``).

    A subprocess is mandatory, not a convenience: ``RLIMIT_AS`` cannot
    be lowered for part of a process and raised back by an unprivileged
    one, and the in-memory leg is *expected* to die of ``MemoryError``
    — neither may happen inside the benchmark runner itself.
    """
    import subprocess

    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.report.store_probe",
            mode,
            input_path,
            str(STORE_JOIN_K),
            str(STORE_JOIN_Q),
            str(STORE_JOIN_TAU),
            str(margin),
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        return {
            "mode": mode,
            "limited": False,
            "completed": False,
            "error": f"probe exited {proc.returncode}: "
            + proc.stderr.strip()[-300:],
            "pairs": None,
            "seconds": None,
            "peak_rss_bytes": None,
        }
    return json.loads(proc.stdout)


def measure_store(quick: bool = False) -> dict:
    """The out-of-core headline: same join, same memory budget, two legs.

    Generates a DBLP-like collection of :data:`STORE_SIZE` strings
    (:data:`STORE_SIZE_QUICK` in quick mode), saves it, builds a
    ``SqliteStore`` **from the saved file** (so both legs parse the
    exact serialized bytes — the precision round-trip is part of the
    contract), then runs each leg in a subprocess capped at
    :data:`STORE_MARGIN_BYTES` of address space above its own
    interpreter baseline. The store leg must complete inside the
    budget; the in-memory leg must not.
    """
    import os
    import tempfile

    from repro.datasets import dblp_like_collection
    from repro.datasets.loader import iter_collection, save_collection
    from repro.store.sqlite import build_sqlite_store

    size = STORE_SIZE_QUICK if quick else STORE_SIZE
    # Low theta / duplicate_rate keeps verification cheap so the
    # benchmark's cost is dominated by scale, which is the point.
    collection = dblp_like_collection(
        size, theta=0.05, rng=1234, duplicate_rate=0.2
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        collection_path = os.path.join(tmp, "collection.txt")
        save_collection(collection, collection_path)
        del collection
        store_path = os.path.join(tmp, "collection.idx")
        start = time.perf_counter()
        meta = build_sqlite_store(
            iter_collection(collection_path),
            store_path,
            k=STORE_JOIN_K,
            q=STORE_JOIN_Q,
        )
        build_seconds = time.perf_counter() - start
        store_leg = _run_store_probe("store", store_path, STORE_MARGIN_BYTES)
        memory_leg = _run_store_probe(
            "memory", collection_path, STORE_MARGIN_BYTES
        )
        store_file_bytes = os.path.getsize(store_path)
    return {
        "strings": size,
        "k": STORE_JOIN_K,
        "q": STORE_JOIN_Q,
        "tau": STORE_JOIN_TAU,
        "margin_bytes": STORE_MARGIN_BYTES,
        "build_seconds": build_seconds,
        "postings": meta.entry_count,
        "store_file_bytes": store_file_bytes,
        "store": store_leg,
        "memory": memory_leg,
    }


def _backend_report() -> dict:
    """Per-backend availability for the suite document.

    ``available: false`` rows carry the human-readable ``reason`` from
    :func:`repro.core.backends.backend_availability`, so a reader of
    the JSON can attribute every ``skipped_kernels`` / ``skipped_joins``
    entry without rerunning anything.
    """
    from repro.core.backends import backend_availability

    return {
        name: {"available": reason is None, "reason": reason}
        for name, reason in backend_availability().items()
    }


def run_suite(
    quick: bool = False,
    join_workers: Sequence[int] = (1, 4),
    only: str | None = None,
) -> dict:
    """The full benchmark suite as a JSON-ready document.

    ``only`` restricts the run to kernel cases whose name matches the
    fnmatch pattern (e.g. ``--only 'cdf_*'``) and skips the end-to-end
    join/serve/store sections entirely — a subset document for local
    iteration, never for the regression gate.
    """
    from fnmatch import fnmatch

    min_seconds = 0.1 if quick else MIN_MEASURE_SECONDS
    join_size = JOIN_SIZE // 2 if quick else JOIN_SIZE
    backends = _backend_report()
    kernels = {}
    skipped: list[str] = []
    for case in KERNELS:
        if only is not None and not fnmatch(case.name, only):
            continue
        if not _requirement_available(case.requires):
            skipped.append(case.name)
            print(
                f"[bench] {case.name}: skipped (requires {case.requires})",
                file=sys.stderr,
            )
            continue
        kernels[case.name] = measure_kernel(case, min_seconds)
        print(
            f"[bench] {case.name}: {kernels[case.name]['ns_per_op']:.0f} ns/op",
            file=sys.stderr,
        )
    if only is not None:
        return {
            "schema": 1,
            "quick": quick,
            "only": only,
            "backends": backends,
            "kernels": kernels,
            "skipped_kernels": skipped,
            "backend_speedup": backend_speedups(kernels),
        }
    joins = {}
    skipped_joins: list[str] = []
    join_cases = [(f"workers{w}", w, "python", "QFCT") for w in join_workers]
    # Native end-to-end legs, sequential so kernel time (not pool
    # scheduling) dominates: workers1_native mirrors workers1 on the
    # full QFCT cascade, and the fct1/fct1_native pair contrasts the
    # backends on the filter-bound FCT variant, where the frequency and
    # CDF kernels see every length-eligible pair instead of only the
    # q-gram survivors — the workload where the compiled kernels move
    # the end-to-end number, not just the stage timers.
    join_cases.append(("workers1_native", 1, "native", "QFCT"))
    join_cases.append(("fct1", 1, "python", "FCT"))
    join_cases.append(("fct1_native", 1, "native", "FCT"))
    for join_name, workers, backend, algorithm in join_cases:
        if backends[backend]["available"] is False:
            skipped_joins.append(join_name)
            print(
                f"[bench] join {join_name}: skipped "
                f"(requires {backend} backend)",
                file=sys.stderr,
            )
            continue
        joins[join_name] = measure_join(
            workers,
            join_size,
            repeats=1 if quick else 3,
            backend=backend,
            algorithm=algorithm,
        )
        row = joins[join_name]
        print(
            f"[bench] join {join_name}: {row['seconds']:.2f}s "
            f"({row['pairs_per_sec']:.0f} pairs/sec)",
            file=sys.stderr,
        )
    from repro.serve.loadgen import measure_serve

    serve = {"mixed": measure_serve(quick)}
    row = serve["mixed"]
    print(
        f"[bench] serve mixed: p50 {row['p50_ms']:.1f}ms / "
        f"p95 {row['p95_ms']:.1f}ms / p99 {row['p99_ms']:.1f}ms "
        f"({row['completed']}/{row['requests']} completed, "
        f"{row['shed']} shed, {row['degraded']} degraded)",
        file=sys.stderr,
    )
    store = {"out_of_core": measure_store(quick)}
    row = store["out_of_core"]
    store_leg, memory_leg = row["store"], row["memory"]
    store_mb = (store_leg.get("peak_rss_bytes") or 0) / 1024 / 1024
    print(
        f"[bench] store out-of-core: {row['strings']} strings, "
        f"margin {row['margin_bytes'] // (1024 * 1024)}MiB — store leg "
        f"{'completed' if store_leg.get('completed') else 'FAILED'} "
        f"({store_leg.get('pairs')} pairs, "
        f"{store_leg.get('seconds') or 0:.1f}s, peak RSS {store_mb:.0f}MiB); "
        f"memory leg "
        f"{'completed' if memory_leg.get('completed') else memory_leg.get('error')}",
        file=sys.stderr,
    )
    return {
        "schema": 1,
        "quick": quick,
        "backends": backends,
        "kernels": kernels,
        "skipped_kernels": skipped,
        "backend_speedup": backend_speedups(kernels),
        "join": joins,
        "skipped_joins": skipped_joins,
        "serve": serve,
        "store": store,
    }


def compute_speedups(before: dict, after: dict) -> dict:
    """before/after ratios (>1 = faster now) for kernels and joins."""
    speedups: dict[str, float] = {}
    for name, row in after.get("kernels", {}).items():
        base = before.get("kernels", {}).get(name)
        if base and row["ns_per_op"] > 0:
            speedups[name] = base["ns_per_op"] / row["ns_per_op"]
    for name, row in after.get("join", {}).items():
        base = before.get("join", {}).get(name)
        if base and base.get("pairs_per_sec"):
            speedups[f"join_{name}"] = (
                row["pairs_per_sec"] / base["pairs_per_sec"]
            )
    return speedups


def unbaselined_entries(current: dict, baseline: dict) -> list[str]:
    """Entries measured in ``current`` that ``baseline`` never recorded.

    These are exactly the measurements the gate cannot gate: a kernel
    or join added without re-recording the baseline would ship with no
    regression protection at all.
    """
    missing = [
        f"kernel {name}"
        for name in current.get("kernels", {})
        if name not in baseline.get("kernels", {})
    ]
    missing.extend(
        f"join {name}"
        for name in current.get("join", {})
        if name not in baseline.get("join", {})
    )
    missing.extend(
        f"serve {name}"
        for name in current.get("serve", {})
        if name not in baseline.get("serve", {})
    )
    missing.extend(
        f"store {name}"
        for name in current.get("store", {})
        if name not in baseline.get("store", {})
    )
    return missing


def check_regressions(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    allow_new_kernels: bool = False,
) -> list[str]:
    """Regression messages vs. ``baseline`` (empty = gate passes).

    A kernel fails when it is more than ``tolerance`` × slower than the
    committed ns/op; a join fails when throughput drops below
    ``1 / tolerance`` of the committed pairs/sec. The generous default
    absorbs CI-machine noise while still catching real regressions.

    The gate walks *both* directions: baseline entries must appear in
    the current run (unless the run recorded them under
    ``skipped_kernels`` / ``skipped_joins`` — a missing optional
    backend), and current entries must have a baseline to gate against.
    The gate used to iterate only the baseline, so a newly added kernel
    silently ran ungated forever; now an unbaselined measurement fails
    the check unless ``allow_new_kernels`` is set (the escape hatch for
    the PR that re-records the baseline).

    One baseline-free ordering invariant rides along: when the compiled
    backend was measured, the native CDF kernels must not be *slower*
    than their python reference — a native build that loses to the
    interpreter is a broken build, whatever the baseline says.
    """
    failures: list[str] = []
    skipped = set(current.get("skipped_kernels", ()))
    skipped_joins = set(current.get("skipped_joins", ()))
    for target, reference_name, accel_name in _BACKEND_PAIRS:
        if not target.startswith("cdf") or not target.endswith(":native"):
            continue
        reference = current.get("kernels", {}).get(reference_name)
        accel = current.get("kernels", {}).get(accel_name)
        if (
            reference
            and accel
            and accel["ns_per_op"] > reference["ns_per_op"]
        ):
            failures.append(
                f"kernel {accel_name}: {accel['ns_per_op']:.0f} ns/op is "
                f"slower than the python reference {reference_name} "
                f"({reference['ns_per_op']:.0f} ns/op) — the native build "
                "is not pulling its weight"
            )
    if not allow_new_kernels:
        failures.extend(
            f"{entry}: no baseline entry (re-record the baseline or pass "
            "--allow-new-kernels)"
            for entry in unbaselined_entries(current, baseline)
        )
    for name, row in baseline.get("kernels", {}).items():
        measured = current.get("kernels", {}).get(name)
        if measured is None:
            if name in skipped:
                continue
            failures.append(f"kernel {name}: missing from current run")
            continue
        if measured["ns_per_op"] > row["ns_per_op"] * tolerance:
            failures.append(
                f"kernel {name}: {measured['ns_per_op']:.0f} ns/op vs "
                f"baseline {row['ns_per_op']:.0f} (> {tolerance:g}x)"
            )
    for name, row in baseline.get("join", {}).items():
        measured = current.get("join", {}).get(name)
        if measured is None:
            if name in skipped_joins:
                continue
            failures.append(f"join {name}: missing from current run")
            continue
        if measured["pairs_per_sec"] * tolerance < row["pairs_per_sec"]:
            failures.append(
                f"join {name}: {measured['pairs_per_sec']:.0f} pairs/sec vs "
                f"baseline {row['pairs_per_sec']:.0f} (> {tolerance:g}x slower)"
            )
    for name, row in baseline.get("serve", {}).items():
        measured = current.get("serve", {}).get(name)
        if measured is None:
            failures.append(f"serve {name}: missing from current run")
            continue
        if measured["p95_ms"] > row["p95_ms"] * tolerance:
            failures.append(
                f"serve {name}: p95 {measured['p95_ms']:.1f}ms vs baseline "
                f"{row['p95_ms']:.1f}ms (> {tolerance:g}x)"
            )
    # Robustness invariants of the serve workload hold regardless of
    # any baseline: the outcome tally must be exhaustive (nothing hung)
    # and the healthy-load workload must neither drop nor error.
    for name, measured in current.get("serve", {}).items():
        for field in ("unaccounted", "dropped", "errors"):
            if measured.get(field, 0):
                failures.append(
                    f"serve {name}: {measured[field]} request(s) {field} "
                    "(expected 0 on the healthy bench workload)"
                )
    # Out-of-core invariants are likewise baseline-free — the headline
    # claim IS the contrast, and it must hold on every run: the store
    # leg completes inside the ceiling it was limited to, while the
    # in-memory leg over the same collection and budget cannot. Only
    # the store leg's peak RSS is gated against the baseline (growth
    # beyond tolerance means hydration stopped being bounded).
    for name, row in current.get("store", {}).items():
        store_leg = row.get("store", {})
        memory_leg = row.get("memory", {})
        if not store_leg.get("completed"):
            failures.append(
                f"store {name}: store leg failed under the memory budget "
                f"({store_leg.get('error')})"
            )
        elif store_leg.get("limited") and store_leg.get("limit_bytes"):
            peak = store_leg.get("peak_rss_bytes") or 0
            if peak > store_leg["limit_bytes"]:
                failures.append(
                    f"store {name}: peak RSS {peak} exceeds the "
                    f"{store_leg['limit_bytes']}-byte address-space ceiling "
                    "(sampler and rlimit disagree)"
                )
        if memory_leg.get("limited") and memory_leg.get("completed"):
            failures.append(
                f"store {name}: in-memory leg completed inside the "
                f"{row.get('margin_bytes')}-byte margin — the out-of-core "
                "contrast no longer demonstrates anything; raise the "
                "collection size or lower the margin"
            )
        base_row = baseline.get("store", {}).get(name)
        base_leg = (base_row or {}).get("store", {})
        if base_leg.get("peak_rss_bytes") and store_leg.get("peak_rss_bytes"):
            if (
                store_leg["peak_rss_bytes"]
                > base_leg["peak_rss_bytes"] * tolerance
            ):
                failures.append(
                    f"store {name}: peak RSS {store_leg['peak_rss_bytes']} "
                    f"vs baseline {base_leg['peak_rss_bytes']} "
                    f"(> {tolerance:g}x)"
                )
    for name in baseline.get("store", {}):
        if name not in current.get("store", {}):
            failures.append(f"store {name}: missing from current run")
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="micro-kernel + end-to-end join benchmark runner",
    )
    parser.add_argument(
        "-o", "--output", default=None, help="write the JSON document here"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter measurements and a half-size join (CI smoke)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="PATTERN",
        help="run only kernel cases matching this fnmatch pattern (e.g. "
        "'cdf_*') and skip the join/serve/store sections; incompatible "
        "with --check, which needs the full suite",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="JSON",
        help="embed speedups vs. this previously recorded run",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="JSON",
        help="fail (exit 1) on > tolerance regression vs. this baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"--check slowdown tolerance (default {DEFAULT_TOLERANCE:g}x)",
    )
    parser.add_argument(
        "--allow-new-kernels",
        action="store_true",
        help="let --check pass when the run measures kernels/joins the "
        "baseline has no entry for (use when re-recording the baseline)",
    )
    args = parser.parse_args(argv)
    if args.only and args.check:
        parser.error("--only runs a subset; the --check gate needs the full suite")

    document = run_suite(quick=args.quick, only=args.only)
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            before = json.load(handle)
        document["baseline"] = before
        document["speedup"] = compute_speedups(before, document)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[bench] wrote {args.output}", file=sys.stderr)
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        print()
    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            committed = json.load(handle)
        if args.allow_new_kernels:
            for entry in unbaselined_entries(document, committed):
                print(f"[bench] NEW (unbaselined): {entry}", file=sys.stderr)
        failures = check_regressions(
            document,
            committed,
            args.tolerance,
            allow_new_kernels=args.allow_new_kernels,
        )
        for failure in failures:
            print(f"[bench] REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            f"[bench] regression gate passed (tolerance {args.tolerance:g}x)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
