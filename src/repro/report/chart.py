"""ASCII charts for benchmark series.

Good enough to eyeball the *shape* of a figure (who wins, where curves
cross) straight from a terminal or a results file, which is exactly what
EXPERIMENTS.md needs to compare against the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKS = "ox+*#@%&"


def bar_chart(
    values: Mapping[str, float], width: int = 50, unit: str = ""
) -> str:
    """Horizontal bars, one per labeled value, scaled to ``width``."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    peak = max(values.values())
    if peak < 0:
        raise ValueError("bar_chart expects non-negative values")
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        if value < 0:
            raise ValueError("bar_chart expects non-negative values")
        bar = "#" * (round(value / peak * width) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.4g}{unit}")
    return "\n".join(lines)


def series_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """Multiple y-series over shared x-values on one ASCII grid.

    Each series gets a mark from ``oxt*...``; the legend maps marks back
    to names. Y is linearly scaled to [0, max]; points overwrite earlier
    marks at the same cell (later series win).
    """
    if not series:
        raise ValueError("series_chart needs at least one series")
    if height < 2 or width < 2:
        raise ValueError("chart must be at least 2x2")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x-values"
            )
    if len(x_values) < 2:
        raise ValueError("need at least two x-values")
    y_max = max(max(ys) for ys in series.values())
    y_max = y_max if y_max > 0 else 1.0
    x_min, x_max = min(x_values), max(x_values)
    span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in zip(x_values, ys):
            col = round((x - x_min) / span * (width - 1))
            row = height - 1 - round(y / y_max * (height - 1))
            grid[row][col] = mark
    lines = [f"{y_max:.4g} ^"]
    lines.extend("      |" + "".join(row).rstrip() for row in grid)
    lines.append("      +" + "-" * width + f"> x in [{x_min:g}, {x_max:g}]")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"      {legend}")
    return "\n".join(lines)
