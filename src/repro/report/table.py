"""Aligned plain-text tables."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _render(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


class TextTable:
    """Accumulate rows, render once with per-column alignment.

    Numeric columns are right-aligned, text columns left-aligned; column
    types are inferred from the data.
    """

    def __init__(self, columns: Sequence[str], precision: int = 4) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("column names must be distinct")
        self.columns = list(columns)
        self.precision = precision
        self._rows: list[list[str]] = []
        self._numeric = [True] * len(columns)

    def add_row(self, *values: Any, **named: Any) -> None:
        """Add one row, positionally or by column name (not both)."""
        if values and named:
            raise ValueError("pass positional values or named values, not both")
        if named:
            unknown = set(named) - set(self.columns)
            if unknown:
                raise ValueError(f"unknown columns {sorted(unknown)}")
            values = tuple(named.get(column, "") for column in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        rendered = []
        for i, value in enumerate(values):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                self._numeric[i] = False
            rendered.append(_render(value, self.precision))
        self._rows.append(rendered)

    def render(self) -> str:
        """The table as a string with a header rule."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        header = "  ".join(
            name.rjust(w) if numeric else name.ljust(w)
            for name, w, numeric in zip(self.columns, widths, self._numeric)
        )
        lines.append(header.rstrip())
        lines.append("  ".join("-" * w for w in widths))
        for row in self._rows:
            line = "  ".join(
                cell.rjust(w) if numeric else cell.ljust(w)
                for cell, w, numeric in zip(row, widths, self._numeric)
            )
            lines.append(line.rstrip())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._rows)

    def __str__(self) -> str:
        return self.render()


def format_table(
    rows: Iterable[dict[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
) -> str:
    """Render dict rows as an aligned table.

    ``columns`` defaults to the keys of the first row, in order.
    """
    rows = list(rows)
    if columns is None:
        if not rows:
            raise ValueError("cannot infer columns from zero rows")
        columns = list(rows[0].keys())
    table = TextTable(columns, precision=precision)
    for row in rows:
        table.add_row(**{k: v for k, v in row.items() if k in columns})
    return table.render()
