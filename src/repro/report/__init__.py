"""Plain-text reporting: aligned tables and ASCII charts.

Used by the benchmark harness to render paper-style series, and exposed
publicly because join statistics are far easier to read as a table than
as a dataclass repr.
"""

from repro.report.table import TextTable, format_table
from repro.report.chart import bar_chart, series_chart

__all__ = ["TextTable", "format_table", "bar_chart", "series_chart"]
