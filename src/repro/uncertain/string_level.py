"""The string-level uncertainty model (Section 1; Jestes et al. [10]).

A string-level uncertain string lists its possible instances explicitly:
``{(s_1, p_1), ..., (s_n, p_n)}`` with probabilities summing to 1.
Instances may differ in *length*, which the character-level model cannot
express. The paper works character-level (concise, realistic) but cites
both; the conversions here make the two interoperable:

* character-level → string-level is exact (enumerate the worlds);
* string-level → character-level is exact only when all instances share
  one length and the per-position marginals are independent — otherwise
  :func:`to_character_level` returns the *marginal approximation* and
  callers opt in explicitly.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from repro.distance.edit import edit_distance, edit_distance_banded
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds
from repro.util.rng import ensure_rng

#: Probabilities must sum to 1 within this tolerance.
PROBABILITY_TOLERANCE = 1e-6


class StringLevelUncertain:
    """An explicit distribution over deterministic string instances."""

    __slots__ = ("_instances",)

    def __init__(self, instances: Iterable[tuple[str, float]]) -> None:
        merged: dict[str, float] = {}
        for text, prob in instances:
            if prob < 0:
                raise ValueError(f"negative probability {prob!r} for {text!r}")
            if prob > 0:
                merged[text] = merged.get(text, 0.0) + float(prob)
        if not merged:
            raise ValueError("a string-level uncertain string needs instances")
        total = sum(merged.values())
        if abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise ValueError(f"instance probabilities must sum to 1 (got {total!r})")
        normalized = [(text, prob / total) for text, prob in merged.items()]
        normalized.sort(key=lambda item: (-item[1], item[0]))
        self._instances = tuple(normalized)

    @classmethod
    def certain(cls, text: str) -> "StringLevelUncertain":
        """A deterministic string as a one-instance distribution."""
        return cls(((text, 1.0),))

    @property
    def instances(self) -> tuple[tuple[str, float], ...]:
        """``(instance, probability)`` pairs, most probable first."""
        return self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self._instances)

    def probability(self, text: str) -> float:
        """``Pr(S = text)``."""
        for instance, prob in self._instances:
            if instance == text:
                return prob
        return 0.0

    def lengths(self) -> set[int]:
        """The set of instance lengths (singleton iff fixed-length)."""
        return {len(text) for text, _ in self._instances}

    def expected_length(self) -> float:
        """``E[|S|]``."""
        return sum(len(text) * prob for text, prob in self._instances)

    def sample(self, rng: random.Random | int | None = None) -> str:
        """Draw one instance."""
        generator = ensure_rng(rng)
        roll = generator.random()
        cumulative = 0.0
        for text, prob in self._instances:
            cumulative += prob
            if roll < cumulative:
                return text
        return self._instances[-1][0]

    def __repr__(self) -> str:
        body = ", ".join(f"({t!r}, {p:.4g})" for t, p in self._instances[:3])
        suffix = ", ..." if len(self._instances) > 3 else ""
        return f"StringLevelUncertain([{body}{suffix}])"


def from_character_level(string: UncertainString) -> StringLevelUncertain:
    """Exact conversion: enumerate the character-level worlds."""
    return StringLevelUncertain(enumerate_worlds(string))


def to_character_level(
    string: StringLevelUncertain, strict: bool = True
) -> UncertainString:
    """Convert to the character-level model via positional marginals.

    With ``strict=True`` (default) the conversion refuses mixed-length
    inputs and inputs whose joint distribution is not the product of its
    marginals (i.e. where the conversion would be lossy). With
    ``strict=False`` the marginal approximation is returned for any
    fixed-length input.
    """
    lengths = string.lengths()
    if len(lengths) != 1:
        raise ValueError(
            f"cannot convert mixed-length instances {sorted(lengths)} to the "
            "character-level model"
        )
    (length,) = lengths
    positions = []
    for i in range(length):
        pdf: dict[str, float] = {}
        for text, prob in string:
            pdf[text[i]] = pdf.get(text[i], 0.0) + prob
        positions.append(UncertainPosition(pdf))
    converted = UncertainString(positions)
    if strict:
        for text, prob in string:
            if abs(converted.instance_probability(text) - prob) > 1e-9:
                raise ValueError(
                    "instance probabilities are not a product of positional "
                    "marginals; pass strict=False for the marginal "
                    "approximation"
                )
    return converted


def similarity_probability(
    left: StringLevelUncertain, right: StringLevelUncertain, k: int
) -> float:
    """``Pr(ed(left, right) <= k)`` under possible-world semantics."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    total = 0.0
    for left_text, left_prob in left:
        for right_text, right_prob in right:
            if abs(len(left_text) - len(right_text)) > k:
                continue
            if edit_distance_banded(left_text, right_text, k) <= k:
                total += left_prob * right_prob
    return total


def expected_edit_distance(
    left: StringLevelUncertain, right: StringLevelUncertain
) -> float:
    """EED over explicit instance distributions (Jestes et al.)."""
    return sum(
        left_prob * right_prob * edit_distance(left_text, right_text)
        for left_text, left_prob in left
        for right_text, right_prob in right
    )
