"""Character-level uncertain strings: the data model of the paper (Section 1).

The central type is :class:`UncertainString`: a sequence of
:class:`UncertainPosition` objects, each a discrete distribution over the
alphabet. Possible-world enumeration, sampling, and the textual
``A{(C,0.5),(G,0.5)}T`` format live in this package too.
"""

from repro.uncertain.alphabet import Alphabet, DNA, PROTEIN22, LOWERCASE27
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import (
    enumerate_worlds,
    enumerate_joint_worlds,
    world_count,
    sample_world,
)
from repro.uncertain.parser import parse_uncertain, format_uncertain
from repro.uncertain.string_level import (
    StringLevelUncertain,
    from_character_level,
    to_character_level,
)

__all__ = [
    "Alphabet",
    "DNA",
    "PROTEIN22",
    "LOWERCASE27",
    "UncertainPosition",
    "UncertainString",
    "enumerate_worlds",
    "enumerate_joint_worlds",
    "world_count",
    "sample_world",
    "parse_uncertain",
    "format_uncertain",
    "StringLevelUncertain",
    "from_character_level",
    "to_character_level",
]
