"""A single uncertain character: a discrete pdf over the alphabet.

Formally (paper Section 1): ``S[i] = {(c_j, p_i(c_j)) | c_j != c_m for
j != m, and sum_j p_i(c_j) = 1}``.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, Mapping

#: Probabilities must sum to 1 within this tolerance at construction time.
PROBABILITY_TOLERANCE = 1e-6


class UncertainPosition:
    """An immutable discrete distribution over single characters.

    Alternatives are stored sorted by descending probability (ties broken by
    character) so that iteration order — and therefore world enumeration
    order — is deterministic.
    """

    __slots__ = ("_chars", "_probs", "_pdf")

    def __init__(self, alternatives: Mapping[str, float] | Iterable[tuple[str, float]]) -> None:
        if isinstance(alternatives, Mapping):
            items = list(alternatives.items())
        else:
            items = list(alternatives)
        if not items:
            raise ValueError("an uncertain position needs at least one alternative")
        seen: dict[str, float] = {}
        for char, prob in items:
            if not isinstance(char, str) or len(char) != 1:
                raise ValueError(f"alternative {char!r} is not a single character")
            if not isinstance(prob, (int, float)) or not math.isfinite(prob):
                raise ValueError(f"non-finite probability {prob!r} for {char!r}")
            if prob < 0:
                raise ValueError(f"negative probability {prob!r} for {char!r}")
            if char in seen:
                raise ValueError(f"duplicate alternative {char!r}")
            seen[char] = float(prob)
        total = sum(seen.values())
        if abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise ValueError(f"probabilities must sum to 1 (got {total!r})")
        # Normalize exactly so downstream products stay well-scaled, then
        # drop zero-probability alternatives (they are not possible worlds).
        normalized = [
            (char, prob / total) for char, prob in seen.items() if prob > 0.0
        ]
        normalized.sort(key=lambda item: (-item[1], item[0]))
        self._chars = tuple(char for char, _ in normalized)
        self._probs = tuple(prob for _, prob in normalized)
        self._pdf = dict(normalized)

    @classmethod
    def certain(cls, char: str) -> "UncertainPosition":
        """A deterministic position: ``char`` with probability 1."""
        return cls(((char, 1.0),))

    @property
    def chars(self) -> tuple[str, ...]:
        """Support of the distribution, most probable first."""
        return self._chars

    @property
    def probs(self) -> tuple[float, ...]:
        """Probabilities aligned with :attr:`chars`."""
        return self._probs

    @property
    def is_certain(self) -> bool:
        """True when exactly one character has probability 1."""
        return len(self._chars) == 1

    @property
    def top(self) -> str:
        """The most probable character."""
        return self._chars[0]

    @property
    def pdf(self) -> dict[str, float]:
        """The char → probability mapping (treat as read-only).

        Exposed so batch consumers (the CDF-bound DP) can hoist the dict
        once instead of calling :meth:`probability` per lookup.
        """
        return self._pdf

    def probability(self, char: str) -> float:
        """``Pr(position = char)`` (0 for characters outside the support)."""
        return self._pdf.get(char, 0.0)

    def agreement(self, other: "UncertainPosition") -> float:
        """``Pr(self = other)`` for independent positions.

        This is ``p1`` in the CDF-bound DP (Theorem 4):
        ``sum_c Pr(self = c) * Pr(other = c)``.
        """
        if len(self._chars) > len(other._chars):
            return other.agreement(self)
        return sum(
            prob * other._pdf.get(char, 0.0)
            for char, prob in zip(self._chars, self._probs)
        )

    def sample(self, rng: random.Random) -> str:
        """Draw one character according to the distribution."""
        roll = rng.random()
        cumulative = 0.0
        for char, prob in zip(self._chars, self._probs):
            cumulative += prob
            if roll < cumulative:
                return char
        return self._chars[-1]

    def items(self) -> Iterator[tuple[str, float]]:
        """Iterate ``(char, prob)`` pairs, most probable first."""
        return iter(zip(self._chars, self._probs))

    def __len__(self) -> int:
        return len(self._chars)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainPosition):
            return NotImplemented
        return self._chars == other._chars and self._probs == other._probs

    def __hash__(self) -> int:
        return hash((self._chars, self._probs))

    def __repr__(self) -> str:
        if self.is_certain:
            return f"UncertainPosition.certain({self._chars[0]!r})"
        body = ", ".join(f"({c!r}, {p:.6g})" for c, p in self.items())
        return f"UncertainPosition([{body}])"
