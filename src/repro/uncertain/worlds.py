"""Possible-world enumeration over uncertain strings.

These are the *reference* semantics: every filtering/verification component
in the library is tested against quantities computed by brute force here.
Enumeration is lazy (generators) so callers can stop early, but the number
of worlds is exponential in the number of uncertain positions — use
:func:`world_count` to budget before iterating.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.uncertain.string import UncertainString

#: Guard rail: enumeration helpers refuse beyond this many worlds by default.
DEFAULT_WORLD_LIMIT = 5_000_000


def world_count(string: UncertainString) -> int:
    """Number of possible worlds of ``string``."""
    return string.world_count()


def enumerate_worlds(
    string: UncertainString, limit: int | None = DEFAULT_WORLD_LIMIT
) -> Iterator[tuple[str, float]]:
    """Yield ``(instance, probability)`` for every possible world.

    Worlds are emitted in the deterministic order induced by each position's
    most-probable-first alternative ordering. Probabilities sum to 1.

    Raises ``ValueError`` when the world count exceeds ``limit`` (pass
    ``limit=None`` to disable the guard).
    """
    if limit is not None:
        count = string.world_count()
        if count > limit:
            raise ValueError(
                f"refusing to enumerate {count} worlds (limit {limit}); "
                "pass limit=None to override"
            )

    def recurse(index: int, prefix: list[str], prob: float) -> Iterator[tuple[str, float]]:
        if index == len(string):
            yield "".join(prefix), prob
            return
        for char, char_prob in string[index].items():
            prefix.append(char)
            yield from recurse(index + 1, prefix, prob * char_prob)
            prefix.pop()

    return recurse(0, [], 1.0)


def enumerate_joint_worlds(
    left: UncertainString,
    right: UncertainString,
    limit: int | None = DEFAULT_WORLD_LIMIT,
) -> Iterator[tuple[str, str, float]]:
    """Yield ``(r_instance, s_instance, joint_probability)`` over ``R × S``.

    ``R`` and ``S`` are independent, so the joint probability is the product
    ``p(r_i) * p(s_j)`` — the paper's ``pw_{i,j}`` (Section 3.2).
    """
    if limit is not None:
        count = left.world_count() * right.world_count()
        if count > limit:
            raise ValueError(
                f"refusing to enumerate {count} joint worlds (limit {limit}); "
                "pass limit=None to override"
            )
    for left_text, left_prob in enumerate_worlds(left, limit=None):
        for right_text, right_prob in enumerate_worlds(right, limit=None):
            yield left_text, right_text, left_prob * right_prob


def sample_world(string: UncertainString, rng: random.Random) -> str:
    """Draw one world of ``string``; alias of :meth:`UncertainString.sample`."""
    return string.sample(rng)
