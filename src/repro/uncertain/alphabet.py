"""Alphabets (Σ) for uncertain strings.

The paper evaluates on two alphabets: dblp author names (|Σ| = 27,
lowercase letters plus space) and a protein alphabet (|Σ| = 22, the 20
standard amino acids plus selenocysteine U and pyrrolysine O). DNA is
included because the paper's running examples (Table 1) use it.
"""

from __future__ import annotations

from typing import Iterator


class Alphabet:
    """An ordered, immutable set of single-character symbols.

    Frequency vectors (:mod:`repro.distance.frequency`) index counts by the
    position of a symbol in this ordering, mirroring the paper's
    ``f(s) = [f(s)_1, ..., f(s)_sigma]`` definition.
    """

    __slots__ = ("_symbols", "_index")

    def __init__(self, symbols: str) -> None:
        if len(set(symbols)) != len(symbols):
            raise ValueError("alphabet symbols must be distinct")
        if not symbols:
            raise ValueError("alphabet must not be empty")
        if any(len(sym) != 1 for sym in symbols):
            raise ValueError("alphabet symbols must be single characters")
        self._symbols = tuple(symbols)
        self._index = {sym: i for i, sym in enumerate(self._symbols)}

    @property
    def symbols(self) -> tuple[str, ...]:
        """The symbols in index order."""
        return self._symbols

    def index(self, symbol: str) -> int:
        """Return the index of ``symbol``; raises ``KeyError`` if absent."""
        return self._index[symbol]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._index

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet({''.join(self._symbols)!r})"

    def validate_text(self, text: str) -> None:
        """Raise ``ValueError`` if ``text`` uses symbols outside this alphabet."""
        for ch in text:
            if ch not in self._index:
                raise ValueError(f"character {ch!r} not in alphabet {self!r}")


#: The four-letter DNA alphabet used in the paper's worked examples.
DNA = Alphabet("ACGT")

#: 22-letter amino-acid alphabet (paper's protein dataset, |Σ| = 22).
PROTEIN22 = Alphabet("ACDEFGHIKLMNPQRSTVWYUO")

#: Lowercase letters plus space (paper's dblp dataset, |Σ| = 27).
LOWERCASE27 = Alphabet("abcdefghijklmnopqrstuvwxyz ")
