"""Textual format for uncertain strings.

The format follows the paper's notation:

    ``A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC``

Plain characters are certain positions; a ``{(c1,p1),(c2,p2),...}`` block is
an uncertain position. :func:`format_uncertain` round-trips with
:func:`parse_uncertain` (probabilities rendered with enough digits to
reconstruct the distribution exactly for typical inputs).
"""

from __future__ import annotations

from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString


class UncertainStringSyntaxError(ValueError):
    """Raised when the textual uncertain-string format is malformed."""

    def __init__(self, text: str, index: int, message: str) -> None:
        super().__init__(f"at offset {index} in {text!r}: {message}")
        self.text = text
        self.index = index


def parse_uncertain(text: str) -> UncertainString:
    """Parse the paper's ``A{(C,0.5),(G,0.5)}T`` notation."""
    positions: list[UncertainPosition] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "}":
            raise UncertainStringSyntaxError(text, i, "unmatched '}'")
        if ch != "{":
            positions.append(UncertainPosition.certain(ch))
            i += 1
            continue
        closing = text.find("}", i + 1)
        if closing == -1:
            raise UncertainStringSyntaxError(text, i, "unterminated '{'")
        body = text[i + 1 : closing]
        positions.append(_parse_pdf_block(text, i + 1, body))
        i = closing + 1
    return UncertainString(positions)


def _parse_pdf_block(text: str, offset: int, body: str) -> UncertainPosition:
    """Parse the interior of one ``{...}`` block into a position."""
    alternatives: list[tuple[str, float]] = []
    i = 0
    n = len(body)
    while i < n:
        if body[i] == ",":
            i += 1
            continue
        if body[i] != "(":
            raise UncertainStringSyntaxError(text, offset + i, "expected '('")
        closing = body.find(")", i + 1)
        if closing == -1:
            raise UncertainStringSyntaxError(text, offset + i, "unterminated '('")
        pair = body[i + 1 : closing]
        comma = pair.find(",")
        if comma == -1:
            raise UncertainStringSyntaxError(
                text, offset + i, f"expected '(char,prob)', got '({pair})'"
            )
        char = pair[:comma]
        prob_text = pair[comma + 1 :].strip()
        if len(char) != 1:
            raise UncertainStringSyntaxError(
                text, offset + i, f"alternative {char!r} is not a single character"
            )
        try:
            prob = float(prob_text)
        except ValueError as exc:
            raise UncertainStringSyntaxError(
                text, offset + i, f"bad probability {prob_text!r}"
            ) from exc
        alternatives.append((char, prob))
        i = closing + 1
    if not alternatives:
        raise UncertainStringSyntaxError(text, offset, "empty pdf block")
    try:
        return UncertainPosition(alternatives)
    except ValueError as exc:
        raise UncertainStringSyntaxError(text, offset, str(exc)) from exc


def format_uncertain(string: UncertainString, precision: int = 6) -> str:
    """Render ``string`` back into the ``A{(C,0.5),(G,0.5)}T`` notation."""
    parts: list[str] = []
    for pos in string:
        if pos.is_certain:
            parts.append(pos.top)
        else:
            body = ",".join(f"({c},{p:.{precision}g})" for c, p in pos.items())
            parts.append("{" + body + "}")
    return "".join(parts)
