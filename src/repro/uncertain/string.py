"""The character-level uncertain string model (paper Section 1).

``S = S[1]S[2]...S[l]`` where each ``S[i]`` is a discrete distribution over
the alphabet. Because the model is character-level, every possible instance
of ``S`` has the same length ``l``.

Positions are 0-indexed throughout the library; the paper's 1-indexed
formulas are translated at each call site.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, Sequence, overload

from repro.uncertain.position import UncertainPosition


class UncertainString:
    """An immutable sequence of :class:`UncertainPosition`.

    Construction accepts any iterable of positions; convenience
    constructors cover the two common cases (fully deterministic text and
    the mixed literal style used by the paper's examples).
    """

    __slots__ = ("_positions", "_hash", "_is_certain", "_agreement_table")

    def __init__(self, positions: Iterable[UncertainPosition]) -> None:
        self._positions = tuple(positions)
        for pos in self._positions:
            if not isinstance(pos, UncertainPosition):
                raise TypeError(
                    f"positions must be UncertainPosition, got {type(pos).__name__}"
                )
        self._hash: int | None = None
        self._is_certain: bool | None = None
        self._agreement_table: tuple[
            str | tuple[tuple[str, ...], tuple[float, ...], dict[str, float]],
            ...,
        ] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "UncertainString":
        """A fully deterministic uncertain string (one world: ``text``)."""
        return cls(UncertainPosition.certain(ch) for ch in text)

    @classmethod
    def from_mixed(
        cls, parts: Sequence[str | dict[str, float] | UncertainPosition]
    ) -> "UncertainString":
        """Build from a mix of plain characters, pdf dicts, and positions.

        Mirrors the paper's literal notation, e.g. the string
        ``A{(C,0.5),(G,0.5)}A`` is ``from_mixed(["A", {"C": .5, "G": .5}, "A"])``.
        Multi-character strings contribute one certain position per character.
        """
        positions: list[UncertainPosition] = []
        for part in parts:
            if isinstance(part, UncertainPosition):
                positions.append(part)
            elif isinstance(part, str):
                positions.extend(UncertainPosition.certain(ch) for ch in part)
            elif isinstance(part, dict):
                positions.append(UncertainPosition(part))
            else:
                raise TypeError(f"unsupported part {part!r}")
        return cls(positions)

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._positions)

    @overload
    def __getitem__(self, index: int) -> UncertainPosition: ...

    @overload
    def __getitem__(self, index: slice) -> "UncertainString": ...

    def __getitem__(self, index: int | slice):
        if isinstance(index, slice):
            return UncertainString(self._positions[index])
        return self._positions[index]

    def __iter__(self) -> Iterator[UncertainPosition]:
        return iter(self._positions)

    @property
    def positions(self) -> tuple[UncertainPosition, ...]:
        """The underlying positions tuple."""
        return self._positions

    def substring(self, start: int, length: int) -> "UncertainString":
        """The window ``self[start : start + length]`` (0-indexed)."""
        if start < 0 or length < 0 or start + length > len(self._positions):
            raise ValueError(
                f"window [{start}, {start + length}) out of range for length {len(self)}"
            )
        return UncertainString(self._positions[start : start + length])

    # ------------------------------------------------------------------
    # uncertainty structure
    # ------------------------------------------------------------------

    @property
    def is_certain(self) -> bool:
        """True when the string has exactly one possible world (cached)."""
        cached = self._is_certain
        if cached is None:
            cached = all(pos.is_certain for pos in self._positions)
            self._is_certain = cached
        return cached

    def agreement_table(
        self,
    ) -> tuple[
        str | tuple[tuple[str, ...], tuple[float, ...], dict[str, float]], ...
    ]:
        """Agreement-ready per-position entries, built once and cached.

        A certain position is represented by its character, an uncertain
        one by its ``(chars, probs, pdf)`` triple in most-probable-first
        order — exactly the data :meth:`UncertainPosition.agreement`
        walks, laid out so batch consumers (the Theorem 4 CDF-bound DP)
        can compute ``p1`` with plain indexing instead of a method call
        per grid cell. The string is immutable, so every pair it
        participates in shares the same table.
        """
        table = self._agreement_table
        if table is None:
            table = tuple(
                pos.chars[0]
                if len(pos.chars) == 1
                else (pos.chars, pos.probs, pos.pdf)
                for pos in self._positions
            )
            self._agreement_table = table
        return table

    @property
    def uncertain_indices(self) -> tuple[int, ...]:
        """0-based indices of positions with more than one alternative."""
        return tuple(i for i, pos in enumerate(self._positions) if not pos.is_certain)

    @property
    def theta(self) -> float:
        """Fraction of uncertain positions (the paper's θ)."""
        if not self._positions:
            return 0.0
        return len(self.uncertain_indices) / len(self._positions)

    @property
    def gamma(self) -> float:
        """Mean number of alternatives per *uncertain* position (paper's γ)."""
        uncertain = self.uncertain_indices
        if not uncertain:
            return 1.0
        return sum(len(self._positions[i]) for i in uncertain) / len(uncertain)

    def world_count(self) -> int:
        """Number of possible worlds: the product of support sizes."""
        return math.prod(len(pos) for pos in self._positions)

    # ------------------------------------------------------------------
    # probabilities
    # ------------------------------------------------------------------

    def instance_probability(self, text: str) -> float:
        """``Pr(S = text)``; 0 when lengths differ or a char is unsupported."""
        if len(text) != len(self._positions):
            return 0.0
        prob = 1.0
        for ch, pos in zip(text, self._positions):
            prob *= pos.probability(ch)
            if prob == 0.0:
                return 0.0
        return prob

    def match_probability(self, word: str, start: int = 0) -> float:
        """``Pr(word = S[start .. start + len(word) - 1])`` (paper Section 3).

        Returns 0 when the window falls outside the string.
        """
        end = start + len(word)
        if start < 0 or end > len(self._positions):
            return 0.0
        prob = 1.0
        for offset, ch in enumerate(word):
            prob *= self._positions[start + offset].probability(ch)
            if prob == 0.0:
                return 0.0
        return prob

    def agreement_probability(self, other: "UncertainString") -> float:
        """``Pr(W = T)`` for two equal-length uncertain strings.

        This is the paper's ``Pr(W = T) = prod_ps sum_c Pr(W[ps]=c) Pr(T[ps]=c)``;
        0 when lengths differ.
        """
        if len(self) != len(other):
            return 0.0
        prob = 1.0
        for mine, theirs in zip(self._positions, other._positions):
            prob *= mine.agreement(theirs)
            if prob == 0.0:
                return 0.0
        return prob

    def can_match(self, word: str, start: int = 0) -> bool:
        """True when ``word`` has positive probability at window ``start``."""
        end = start + len(word)
        if start < 0 or end > len(self._positions):
            return False
        return all(
            self._positions[start + offset].probability(ch) > 0.0
            for offset, ch in enumerate(word)
        )

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------

    def most_probable_instance(self) -> tuple[str, float]:
        """The modal world and its probability (greedy per position)."""
        chars = []
        prob = 1.0
        for pos in self._positions:
            chars.append(pos.top)
            prob *= pos.probs[0]
        return "".join(chars), prob

    def sample(self, rng: random.Random) -> str:
        """Draw one possible world according to the product distribution."""
        return "".join(pos.sample(rng) for pos in self._positions)

    def support_strings(self) -> Iterator[str]:
        """Iterate the possible worlds *without* probabilities (lazy product)."""
        from repro.uncertain.worlds import enumerate_worlds

        return (text for text, _ in enumerate_worlds(self))

    # ------------------------------------------------------------------
    # character frequencies (used by frequency-distance filtering, Sec. 5)
    # ------------------------------------------------------------------

    def char_count_bounds(self, char: str) -> tuple[int, int]:
        """``(f^c, f^t)``: certain and total occurrence counts of ``char``.

        ``f^c`` counts positions where ``char`` occurs with probability 1 and
        ``f^t`` counts positions where it occurs with positive probability,
        exactly the paper's ``fS_i^c`` / ``fS_i^t`` (Section 5).
        """
        certain = 0
        total = 0
        for pos in self._positions:
            prob = pos.probability(char)
            if prob > 0.0:
                total += 1
                if pos.is_certain:
                    certain += 1
        return certain, total

    def char_position_probs(self, char: str) -> list[float]:
        """Probabilities of ``char`` at each of its *uncertain* occurrences.

        The returned list drives the Poisson-binomial count distribution
        ``Pr(fS_i = x)`` of Section 5; certain occurrences are excluded
        (they shift the distribution by ``f^c``).
        """
        probs = []
        for pos in self._positions:
            prob = pos.probability(char)
            if 0.0 < prob and not pos.is_certain:
                probs.append(prob)
        return probs

    def support_alphabet(self) -> set[str]:
        """Every character that occurs with positive probability somewhere."""
        support: set[str] = set()
        for pos in self._positions:
            support.update(pos.chars)
        return support

    # ------------------------------------------------------------------
    # misc protocol
    # ------------------------------------------------------------------

    def __add__(self, other: "UncertainString") -> "UncertainString":
        if not isinstance(other, UncertainString):
            return NotImplemented
        return UncertainString(self._positions + other._positions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainString):
            return NotImplemented
        return self._positions == other._positions

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._positions)
        return self._hash

    def __repr__(self) -> str:
        from repro.uncertain.parser import format_uncertain

        return f"UncertainString({format_uncertain(self)!r})"
