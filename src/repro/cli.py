"""Command-line interface.

Four subcommands covering the end-to-end workflow on collection files
(one uncertain string per line in the ``A{(C,0.5),(G,0.5)}T`` notation):

* ``repro-join gen`` — generate a synthetic dataset (dblp-like or
  protein-like, Section 7 parameters).
* ``repro-join index build`` / ``index info`` — build (and inspect) an
  out-of-core SQLite index store from a collection file; ``join``,
  ``search``, ``topk``, and ``serve`` accept ``--store PATH`` in place
  of the collection argument and then run with peak memory bounded by
  the hydration cache instead of the collection size (identical
  output; see DESIGN.md §6i).
* ``repro-join join`` — self-join a collection under (k, tau)-matching
  (``--stream`` prints pairs as the engine discovers them;
  ``--shard i/N --resume DIR`` runs one slice of the band plan as its
  own process, checkpointing into ``DIR``).
* ``repro-join merge`` — fold a sharded (or flat ``--resume``) run
  directory into the final pair list, identical to a serial join.
* ``repro-join search`` — search a collection for strings similar to a
  query.
* ``repro-join topk`` — the N most probably similar pairs (adaptive
  threshold; no tau needed).
* ``repro-join serve`` — persistent threaded HTTP service: index the
  collection once, answer ``/search``/``/topk``/``/mini-join`` JSON
  requests with per-request tau/k under admission control, request
  deadlines, and graceful degradation (see :mod:`repro.serve`).
* ``repro-join verify`` — exact ``Pr(ed <= k)`` for two strings.
* ``repro-join bench`` — hot-kernel/join benchmark suite (all flags
  pass through to ``python -m benchmarks.run``).

Examples::

    repro-join gen --kind dblp --count 500 --theta 0.2 -o names.txt
    repro-join index build names.txt -o names.store -k 2 -q 3
    repro-join index info names.store
    repro-join join --store names.store -k 2 --tau 0.1 -q 3
    repro-join join names.txt -k 2 --tau 0.1 --stats
    repro-join join names.txt -k 2 --tau 0.1 --stream
    repro-join join names.txt -k 2 --tau 0.1 --shard 0/3 --resume run/
    repro-join merge run/
    repro-join search names.txt "jon{(a,0.7),(o,0.3)}than smith" -k 2 --tau 0.1
    repro-join topk names.txt -k 2 --count 10
    repro-join serve names.txt -k 2 --tau 0.1 --port 8765
    repro-join verify "banana" "ban{(a,0.7),(e,0.3)}na" -k 1
    repro-join bench --quick -o bench.json --baseline BENCH_5.json
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Sequence

from repro.core.config import ALGORITHMS, JoinConfig
from repro.core.engine import iter_join_pairs
from repro.core.join import similarity_join
from repro.core.search import similarity_search
from repro.core.stats import JoinStatistics
from repro.core.topk import top_k_join
from repro.datasets.loader import load_collection, save_collection
from repro.datasets.presets import dblp_like_collection, protein_like_collection
from repro.uncertain.parser import parse_uncertain
from repro.verify.trie_verify import trie_verify


def _add_join_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-k", type=int, required=True, help="edit-distance threshold")
    parser.add_argument(
        "--tau", type=float, required=True, help="probability threshold in [0, 1)"
    )
    parser.add_argument("-q", type=int, default=3, help="segment length (default 3)")
    parser.add_argument(
        "--algorithm",
        default="QFCT",
        choices=sorted(ALGORITHMS),
        help="filter stack variant (default QFCT)",
    )
    parser.add_argument(
        "--probabilities",
        action="store_true",
        help="verify every result pair and report its exact probability",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the length-banded parallel join "
        "driver (default 1 = serial; results are identical)",
    )
    parser.add_argument(
        "--backend",
        default="python",
        choices=("python", "numpy", "native"),
        help="kernel backend: 'python' (default, pure-python "
        "reference), 'numpy' (vectorized block kernels; requires the "
        "optional numpy dependency), or 'native' (compiled C kernels; "
        "requires the optional extension to be built); results are "
        "identical in every case",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print pipeline statistics"
    )


def _add_store_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="run against a prebuilt SQLite index store (see `repro-join "
        "index build`) instead of a collection file: identical output, "
        "peak memory bounded by the hydration cache (DESIGN.md §6i)",
    )


def _add_resilience_options(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance knobs of the banded parallel driver."""
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-dispatches a failed band gets before it is degraded to "
        "an in-process run (default 2)",
    )
    parser.add_argument(
        "--band-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-band execution deadline; a band exceeding it is "
        "retried, then degraded (default: no limit)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_DIR",
        help="checkpoint run directory: completed bands are persisted "
        "there (atomically) and re-running the same command resumes, "
        "skipping them; created on first use",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault plan for the band executor, e.g. "
        "'crash@2x3,hang@0/1.5' or shard-qualified 'crash@s1:2x3' "
        "(testing/benchmarks; never changes results)",
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only shard I of an N-way decomposition of the band "
        "plan, checkpointing into the --resume directory; run all N "
        "shards (any order, any machines sharing the directory), then "
        "fold them with `repro-join merge RUN_DIR` (requires --resume)",
    )
    parser.add_argument(
        "--mp-start",
        default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for the worker pool "
        "(default: platform default)",
    )


def _config(args: argparse.Namespace) -> JoinConfig:
    return JoinConfig.for_algorithm(
        args.algorithm,
        k=args.k,
        tau=args.tau,
        q=args.q,
        report_probabilities=args.probabilities,
        workers=getattr(args, "workers", 1),
        retries=getattr(args, "retries", 2),
        band_timeout=getattr(args, "band_timeout", None),
        checkpoint_dir=getattr(args, "resume", None),
        fault_spec=getattr(args, "inject_faults", None),
        shard=getattr(args, "shard", None),
        mp_start=getattr(args, "mp_start", None),
        backend=getattr(args, "backend", "python"),
    )


def _require_one_input(args: argparse.Namespace, command: str) -> "int | None":
    """Enforce "exactly one of COLLECTION or --store"; returns exit code."""
    if (args.store is None) == (args.collection is None):
        print(
            f"{command}: pass exactly one of a collection file or "
            "--store PATH",
            file=sys.stderr,
        )
        return 2
    return None


def _open_store(path: str, command: str, config: "JoinConfig | None" = None):
    """Open (and header-check) a store file; ``(None, exit code)`` on failure.

    ``config`` additionally enforces the store/config (k, q) contract,
    so an incompatible store fails with the typed rebuild hint instead
    of a traceback.
    """
    from repro.core.errors import ReproError
    from repro.store.sqlite import SqliteStore

    try:
        store = SqliteStore(path)
        if config is not None:
            store.meta.check_compatible(config)
        return store, 0
    except (ReproError, OSError) as exc:
        print(f"{command}: {exc}", file=sys.stderr)
        return None, 2


def _cmd_gen(args: argparse.Namespace) -> int:
    if args.kind == "dblp":
        collection = dblp_like_collection(
            args.count, theta=args.theta, gamma=args.gamma, rng=args.seed
        )
    else:
        collection = protein_like_collection(
            args.count, theta=args.theta, gamma=args.gamma, rng=args.seed
        )
    save_collection(collection, args.output)
    print(f"wrote {len(collection)} uncertain strings to {args.output}")
    return 0


def _print_pair(pair) -> None:
    if pair.probability is not None:
        print(f"{pair.left_id}\t{pair.right_id}\t{pair.probability:.6f}")
    else:
        print(f"{pair.left_id}\t{pair.right_id}")


def _cmd_join(args: argparse.Namespace) -> int:
    failure = _require_one_input(args, "join")
    if failure is not None:
        return failure
    config = _config(args)
    store = None
    if args.store is not None:
        store, code = _open_store(args.store, "join", config)
        if store is None:
            return code
        total = len(store)
        collection = None
    else:
        collection = load_collection(args.collection)
        total = len(collection)
    if config.shard is not None:
        if args.stream:
            print("--shard and --stream are incompatible", file=sys.stderr)
            return 2
        # The shard's outcome is partial (its slice of the band plan
        # only), so pairs are NOT printed — `repro-join merge RUN_DIR`
        # folds the shards and prints the full, serial-identical list.
        if store is not None:
            from repro.store.driver import store_similarity_join

            outcome = store_similarity_join(store, config)
        else:
            outcome = similarity_join(collection, config)
        shard_index, shard_count = config.shard_coordinates or (0, 1)
        print(
            f"shard {shard_index}/{shard_count} complete: "
            f"{len(outcome.pairs)} pair(s) checkpointed under "
            f"{config.checkpoint_dir}; fold with "
            f"`repro-join merge {config.checkpoint_dir}` once all "
            f"{shard_count} shards have run",
            file=sys.stderr,
        )
        if args.stats:
            print(outcome.stats.summary(), file=sys.stderr)
        return 0
    if args.stream:
        # Pairs appear as the engine discovers them (discovery order,
        # not sorted) — flushed line by line for downstream consumers.
        # Streaming is serial: banding and checkpointing don't apply.
        config = replace(config, workers=1, checkpoint_dir=None)
        stats = JoinStatistics(total_strings=total)
        if store is not None:
            from repro.store.driver import iter_store_join_pairs

            pair_iter = iter_store_join_pairs(store, config, stats=stats)
        else:
            pair_iter = iter_join_pairs(collection, config, stats=stats)
        for pair in pair_iter:
            _print_pair(pair)
            sys.stdout.flush()
        if args.stats:
            print(stats.summary(), file=sys.stderr)
        return 0
    if store is not None:
        from repro.store.driver import store_similarity_join

        outcome = store_similarity_join(store, config)
    else:
        outcome = similarity_join(collection, config)
    for pair in outcome.pairs:
        _print_pair(pair)
    if args.stats:
        print(outcome.stats.summary(), file=sys.stderr)
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    failure = _require_one_input(args, "topk")
    if failure is not None:
        return failure
    config = JoinConfig.for_algorithm(
        args.algorithm, k=args.k, tau=0.0, q=args.q
    )
    if args.store is not None:
        store, code = _open_store(args.store, "topk", config)
        if store is None:
            return code
        outcome = top_k_join(
            None, k=args.k, count=args.count, q=args.q, config=config,
            store=store,
        )
    else:
        collection = load_collection(args.collection)
        outcome = top_k_join(
            collection, k=args.k, count=args.count, q=args.q, config=config
        )
    for pair in outcome.pairs:
        _print_pair(pair)
    if args.stats:
        print(outcome.stats.summary(), file=sys.stderr)
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    failure = _require_one_input(args, "search")
    if failure is not None:
        return failure
    query = parse_uncertain(args.query)
    config = _config(args)
    if args.store is not None:
        from repro.core.search import SimilaritySearcher

        store, code = _open_store(args.store, "search", config)
        if store is None:
            return code
        outcome = SimilaritySearcher.from_store(store, config).search(query)
    else:
        collection = load_collection(args.collection)
        outcome = similarity_search(collection, query, config)
    for match in outcome.matches:
        if match.probability is not None:
            print(f"{match.string_id}\t{match.probability:.6f}")
        else:
            print(f"{match.string_id}")
    if args.stats:
        print(outcome.stats.summary(), file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.errors import ReproError
    from repro.serve.http import serve_until_interrupted
    from repro.serve.service import JoinService, ServeOptions

    failure = _require_one_input(args, "serve")
    if failure is not None:
        return failure
    config = JoinConfig.for_algorithm(
        args.algorithm,
        k=args.k,
        tau=args.tau,
        q=args.q,
        report_probabilities=args.probabilities,
        backend=args.backend,
    )
    try:
        options = ServeOptions(
            max_in_flight=args.max_in_flight,
            queue_limit=args.queue_limit,
            queue_timeout=args.queue_timeout,
            retry_after=args.retry_after,
            request_timeout=args.request_timeout,
            degrade_margin=args.degrade_margin,
            drain_timeout=args.drain_timeout,
            fault_spec=args.inject_faults,
        )
        if args.store is not None:
            if args.index_snapshot is not None:
                print(
                    "serve: --store and --index-snapshot are mutually "
                    "exclusive (the store is the index)",
                    file=sys.stderr,
                )
                return 2
            service = JoinService.from_store(args.store, config, options)
        else:
            service = JoinService.from_files(
                args.collection, config, options, index_path=args.index_snapshot
            )
    except (ReproError, OSError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    return serve_until_interrupted(
        service,
        args.host,
        args.port,
        announce=lambda message: print(message, file=sys.stderr),
    )


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.datasets.loader import iter_collection
    from repro.store.sqlite import build_sqlite_store

    # Streaming end to end: records are parsed one at a time and land
    # in batched inserts, so building an index store for a collection
    # far larger than RAM stays flat in memory.
    meta = build_sqlite_store(
        iter_collection(args.collection), args.output, k=args.k, q=args.q
    )
    print(
        f"wrote index store {args.output}: {meta.count} string(s), "
        f"{meta.entry_count} posting(s), k={meta.k}, q={meta.q}",
        file=sys.stderr,
    )
    return 0


def _cmd_index_info(args: argparse.Namespace) -> int:
    store, code = _open_store(args.store, "index info")
    if store is None:
        return code
    meta = store.meta
    print(f"path\t{store.path}")
    print(f"strings\t{meta.count}")
    print(f"postings\t{meta.entry_count}")
    print(f"k\t{meta.k}")
    print(f"q\t{meta.q}")
    print(f"digest\t{meta.digest}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.core.merge import merge_run

    outcome = merge_run(args.run_dir)
    for pair in outcome.pairs:
        _print_pair(pair)
    if args.stats:
        print(outcome.stats.summary(), file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.report.bench import main as bench_main

    return bench_main(list(args.bench_args))


def _cmd_verify(args: argparse.Namespace) -> int:
    left = parse_uncertain(args.left)
    right = parse_uncertain(args.right)
    probability = trie_verify(left, right, args.k)
    print(f"{probability:.9f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-join",
        description="similarity joins for uncertain strings ((k, tau)-matching)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("gen", help="generate a synthetic collection")
    gen.add_argument("--kind", choices=("dblp", "protein"), default="dblp")
    gen.add_argument("--count", type=int, default=1000)
    gen.add_argument("--theta", type=float, default=0.2)
    gen.add_argument("--gamma", type=int, default=5)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_cmd_gen)

    index = commands.add_parser(
        "index",
        help="build / inspect out-of-core SQLite index stores "
        "(DESIGN.md §6i)",
    )
    index_commands = index.add_subparsers(dest="index_command", required=True)
    index_build = index_commands.add_parser(
        "build",
        help="build a store file from a collection (streaming: the "
        "collection never has to fit in memory)",
    )
    index_build.add_argument(
        "collection", help="collection file (one string per line)"
    )
    index_build.add_argument(
        "-o",
        "--output",
        required=True,
        metavar="STORE",
        help="store file to write (replaced atomically if present)",
    )
    index_build.add_argument(
        "-k",
        type=int,
        required=True,
        help="edit-distance threshold the postings are segmented for "
        "(joins against the store must use the same k)",
    )
    index_build.add_argument(
        "-q", type=int, default=3, help="segment length (default 3)"
    )
    index_build.set_defaults(func=_cmd_index_build)
    index_info = index_commands.add_parser(
        "info", help="print a store file's validated header"
    )
    index_info.add_argument("store", help="store file")
    index_info.set_defaults(func=_cmd_index_info)

    join = commands.add_parser("join", help="self-join a collection file")
    join.add_argument(
        "collection",
        nargs="?",
        default=None,
        help="collection file (one string per line); omit when joining "
        "an index store via --store",
    )
    _add_store_option(join)
    _add_join_options(join)
    _add_resilience_options(join)
    join.add_argument(
        "--stream",
        action="store_true",
        help="print pairs as they are discovered (discovery order, "
        "serial engine; ignores --workers)",
    )
    join.set_defaults(func=_cmd_join)

    merge = commands.add_parser(
        "merge",
        help="fold a sharded (or flat --resume) run directory into the "
        "final pair list, identical to a serial join",
    )
    merge.add_argument(
        "run_dir",
        help="directory every `join --shard i/N --resume RUN_DIR` "
        "invocation wrote to",
    )
    merge.add_argument(
        "--stats", action="store_true", help="print merged statistics"
    )
    merge.set_defaults(func=_cmd_merge)

    topk = commands.add_parser(
        "topk", help="the N most probably similar pairs (adaptive threshold)"
    )
    topk.add_argument("collection", nargs="?", default=None)
    _add_store_option(topk)
    topk.add_argument("-k", type=int, required=True, help="edit-distance threshold")
    topk.add_argument(
        "--count", type=int, required=True, help="number of pairs to report"
    )
    topk.add_argument("-q", type=int, default=3, help="segment length (default 3)")
    topk.add_argument(
        "--algorithm",
        default="QFCT",
        choices=sorted(ALGORITHMS),
        help="filter stack variant (default QFCT)",
    )
    topk.add_argument(
        "--stats", action="store_true", help="print pipeline statistics"
    )
    topk.set_defaults(func=_cmd_topk)

    search = commands.add_parser("search", help="search a collection file")
    search.add_argument("collection", nargs="?", default=None)
    search.add_argument("query", help="query in uncertain-string notation")
    _add_store_option(search)
    _add_join_options(search)
    search.set_defaults(func=_cmd_search)

    serve = commands.add_parser(
        "serve",
        help="persistent HTTP query service over one indexed collection "
        "(admission control, per-request deadlines, graceful degradation)",
    )
    serve.add_argument(
        "collection",
        nargs="?",
        default=None,
        help="collection file to index and serve; omit when serving an "
        "index store via --store",
    )
    _add_store_option(serve)
    _add_join_options(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=8,
        help="concurrent requests executed at once (default 8)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="requests allowed to wait for a slot; beyond this arrivals "
        "are shed immediately with 503 (default 16)",
    )
    serve.add_argument(
        "--queue-timeout",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="longest a queued request waits for a slot before 503 "
        "(default 0.25)",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="Retry-After hint attached to shed responses (default 0.5)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-request deadline cap; expiry returns a typed 504 with "
        "partial results (default 5)",
    )
    serve.add_argument(
        "--degrade-margin",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="fall back to the sampling verifier when less than this "
        "fraction of the request budget remains; 0 disables "
        "degradation (default 0.25)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="crash-only shutdown: wait this long for in-flight requests, "
        "then abandon them (default 5)",
    )
    serve.add_argument(
        "--index-snapshot",
        default=None,
        metavar="PATH",
        help="preload the segment index from a snapshot saved by "
        "repro.index.persistence instead of rebuilding it (validated "
        "against the serving config and collection first)",
    )
    serve.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="request-path fault plan, e.g. 'slow@3/0.5,drop@5,"
        "corrupt-resp@7' (testing; targets are request arrival indices)",
    )
    serve.set_defaults(func=_cmd_serve)

    bench = commands.add_parser(
        "bench",
        help="run the kernel/join benchmark suite (see benchmarks.run)",
    )
    bench.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to the benchmark runner "
        "(-o/--output, --quick, --only, --baseline, --check, --tolerance)",
    )
    bench.set_defaults(func=_cmd_bench)

    verify = commands.add_parser("verify", help="exact Pr(ed(a, b) <= k)")
    verify.add_argument("left")
    verify.add_argument("right")
    verify.add_argument("-k", type=int, required=True)
    verify.set_defaults(func=_cmd_verify)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["bench"]:
        # argparse.REMAINDER refuses option-like tokens right after a
        # subcommand, so forward everything past "bench" ourselves.
        from repro.report.bench import main as bench_main

        return bench_main(arguments[1:])
    args = build_parser().parse_args(arguments)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
