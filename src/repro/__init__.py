"""repro — similarity joins for uncertain strings.

A from-scratch reproduction of *"Similarity Joins for Uncertain Strings"*
(Patil & Shah, SIGMOD 2014): given two collections of character-level
uncertain strings and thresholds ``(k, tau)``, report every pair with
``Pr(ed(R, S) <= k) > tau`` — possible-world semantics, without
enumerating the exponentially many worlds.

Quickstart::

    from repro import JoinConfig, similarity_join, parse_uncertain

    collection = [
        parse_uncertain("banana"),
        parse_uncertain("ban{(a,0.7),(e,0.3)}na"),
        parse_uncertain("bandana"),
    ]
    outcome = similarity_join(collection, JoinConfig(k=2, tau=0.5))
    for pair in outcome.pairs:
        print(pair.left_id, pair.right_id, pair.probability)

See DESIGN.md for the subsystem inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.core import (
    ALGORITHMS,
    BandTimeoutError,
    CheckpointCorruptError,
    CheckpointMismatchError,
    CheckpointStore,
    ConfigurationError,
    CorruptResultError,
    DatasetRecordError,
    IncrementalJoiner,
    JoinConfig,
    JoinEngine,
    JoinOutcome,
    JoinPair,
    JoinStatistics,
    ReproError,
    RetryPolicy,
    SearchMatch,
    SearchOutcome,
    SimilaritySearcher,
    WorkerCrashError,
    iter_join_pairs,
    iter_matches,
    parallel_similarity_join,
    parallel_similarity_join_two,
    similarity_join,
    similarity_join_two,
    similarity_search,
    top_k_join,
)
from repro.distance import (
    edit_distance,
    edit_distance_within,
    edit_similarity_probability,
    expected_edit_distance,
    frequency_distance,
)
from repro.uncertain import (
    Alphabet,
    StringLevelUncertain,
    UncertainPosition,
    UncertainString,
    format_uncertain,
    parse_uncertain,
)
from repro.util import FaultPlan, FaultSpec
from repro.verify import naive_verify, trie_verify

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "IncrementalJoiner",
    "top_k_join",
    "JoinConfig",
    "JoinEngine",
    "iter_join_pairs",
    "iter_matches",
    "JoinOutcome",
    "JoinPair",
    "JoinStatistics",
    "SearchMatch",
    "SearchOutcome",
    "SimilaritySearcher",
    "similarity_join",
    "similarity_join_two",
    "parallel_similarity_join",
    "parallel_similarity_join_two",
    "similarity_search",
    "edit_distance",
    "edit_distance_within",
    "edit_similarity_probability",
    "expected_edit_distance",
    "frequency_distance",
    "Alphabet",
    "StringLevelUncertain",
    "UncertainPosition",
    "UncertainString",
    "format_uncertain",
    "parse_uncertain",
    "naive_verify",
    "trie_verify",
    "ReproError",
    "ConfigurationError",
    "WorkerCrashError",
    "CorruptResultError",
    "BandTimeoutError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "DatasetRecordError",
    "RetryPolicy",
    "CheckpointStore",
    "FaultPlan",
    "FaultSpec",
    "__version__",
]
