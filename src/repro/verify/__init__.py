"""Exact verification of candidate pairs (Section 6.2 and 7.7).

:func:`trie_verify` implements the paper's trie-based verification: the
trie ``T_R`` of all possible instances of ``R`` is built once (amortized
over all candidate pairs with the same ``R``), while ``T_S`` is explored
*on demand* — a possible-world prefix of ``S`` is expanded only while its
active-node set in ``T_R`` is non-empty. :func:`naive_verify` is the
all-pairs baseline used in Figure 8.
"""

from repro.verify.trie import Trie, TrieNode, build_trie
from repro.verify.active import ActiveNodes, initial_active_nodes, advance_active_nodes
from repro.verify.trie_verify import trie_verify, trie_verify_threshold
from repro.verify.naive import naive_verify, naive_verify_threshold
from repro.verify.sampling import (
    SampledDecision,
    sampled_verify,
    sampled_verify_threshold,
)

__all__ = [
    "Trie",
    "TrieNode",
    "build_trie",
    "ActiveNodes",
    "initial_active_nodes",
    "advance_active_nodes",
    "trie_verify",
    "trie_verify_threshold",
    "naive_verify",
    "naive_verify_threshold",
    "SampledDecision",
    "sampled_verify",
    "sampled_verify_threshold",
]
