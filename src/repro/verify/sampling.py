"""Monte-Carlo verification (extension beyond the paper).

The trie verifier is exact but its cost grows with the world count;
beyond ~10^6 worlds per side even on-demand expansion is expensive. For
that regime this module estimates ``p = Pr(ed(R, S) <= k)`` by sampling
joint worlds, and decides ``p > tau`` with a Hoeffding confidence bound:

    ``Pr(|p_hat - p| >= eps) <= 2 exp(-2 n eps^2)``

:func:`sampled_verify_threshold` draws adaptively until the interval
``p_hat ± eps(n, delta)`` clears ``tau`` on one side, or a sample budget
is exhausted (returning the point estimate's side, flagged as
low-confidence).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.distance.edit import edit_distance_banded
from repro.uncertain.string import UncertainString
from repro.util.rng import ensure_rng


def sampled_verify(
    left: UncertainString,
    right: UncertainString,
    k: int,
    samples: int = 1024,
    rng: random.Random | int | None = None,
) -> float:
    """Monte-Carlo estimate of ``Pr(ed(left, right) <= k)``."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    if abs(len(left) - len(right)) > k:
        return 0.0
    generator = ensure_rng(rng)
    hits = 0
    for _ in range(samples):
        if (
            edit_distance_banded(left.sample(generator), right.sample(generator), k)
            <= k
        ):
            hits += 1
    return hits / samples


@dataclass(frozen=True)
class SampledDecision:
    """Outcome of an adaptive threshold test."""

    similar: bool
    estimate: float
    samples: int
    confident: bool

    def __bool__(self) -> bool:
        return self.similar


def sampled_verify_threshold(
    left: UncertainString,
    right: UncertainString,
    k: int,
    tau: float,
    delta: float = 1e-3,
    batch: int = 256,
    max_samples: int = 65_536,
    rng: random.Random | int | None = None,
) -> SampledDecision:
    """Decide ``Pr(ed <= k) > tau`` with confidence ``1 - delta``.

    Samples in batches; after ``n`` draws the Hoeffding radius is
    ``eps = sqrt(ln(2/delta) / (2n))`` and the test stops as soon as
    ``p_hat - eps > tau`` (similar) or ``p_hat + eps <= tau``
    (dissimilar). If ``max_samples`` is reached first the point
    estimate's side is returned with ``confident=False``.
    """
    if not 0.0 <= tau < 1.0:
        raise ValueError(f"tau must be in [0, 1), got {tau}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if abs(len(left) - len(right)) > k:
        return SampledDecision(False, 0.0, 0, True)
    generator = ensure_rng(rng)
    hits = 0
    drawn = 0
    while drawn < max_samples:
        for _ in range(min(batch, max_samples - drawn)):
            if (
                edit_distance_banded(
                    left.sample(generator), right.sample(generator), k
                )
                <= k
            ):
                hits += 1
            drawn += 1
        estimate = hits / drawn
        radius = math.sqrt(math.log(2.0 / delta) / (2.0 * drawn))
        if estimate - radius > tau:
            return SampledDecision(True, estimate, drawn, True)
        if estimate + radius <= tau:
            return SampledDecision(False, estimate, drawn, True)
    estimate = hits / drawn
    return SampledDecision(estimate > tau, estimate, drawn, False)
