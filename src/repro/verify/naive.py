"""Naive verification: enumerate all world pairs (Section 7.7 baseline).

Each possible instance of ``R`` is compared with each instance of ``S``
using the banded, early-terminating edit-distance kernel. Quadratic in the
world counts — this exists as the comparison point for Figure 8 and as an
independent oracle in tests.
"""

from __future__ import annotations

from repro.distance.edit import edit_distance_banded
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds


def naive_verify(
    left: UncertainString,
    right: UncertainString,
    k: int,
) -> float:
    """Exact ``Pr(ed(left, right) <= k)`` by all-pairs world comparison."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if abs(len(left) - len(right)) > k:
        return 0.0
    left_worlds = list(enumerate_worlds(left, limit=None))
    right_worlds = list(enumerate_worlds(right, limit=None))
    total = 0.0
    for left_text, left_prob in left_worlds:
        for right_text, right_prob in right_worlds:
            if edit_distance_banded(left_text, right_text, k) <= k:
                total += left_prob * right_prob
    return total


def naive_verify_threshold(
    left: UncertainString,
    right: UncertainString,
    k: int,
    tau: float,
) -> bool:
    """Decide ``Pr(ed <= k) > tau`` with accumulate-and-stop early exits."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if abs(len(left) - len(right)) > k:
        return False
    left_worlds = list(enumerate_worlds(left, limit=None))
    right_worlds = list(enumerate_worlds(right, limit=None))
    total = 0.0
    missed = 0.0
    for left_text, left_prob in left_worlds:
        for right_text, right_prob in right_worlds:
            joint = left_prob * right_prob
            if edit_distance_banded(left_text, right_text, k) <= k:
                total += joint
                if total > tau:
                    return True
            else:
                missed += joint
                if 1.0 - missed <= tau:
                    return False
    return total > tau
