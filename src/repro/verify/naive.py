"""Naive verification: enumerate all world pairs (Section 7.7 baseline).

Each possible instance of ``R`` is compared with each instance of ``S``
using the banded, early-terminating edit-distance kernel. Quadratic in the
world counts — this exists as the comparison point for Figure 8 and as an
independent oracle in tests.
"""

from __future__ import annotations

import math

from repro.distance.edit import edit_distance_banded
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds

#: Slack on the "total world mass = 1.0" assumption used by early
#: rejection. The floats of a world distribution sum to 1.0 only up to
#: ~n_worlds ulps of drift (n is bounded by the 2M pair-enumeration
#: guard, so drift < 1e-9). Early rejection keeps this margin of
#: remaining mass in hand; pairs within it of ``tau`` simply fall
#: through to the exact fsum decision at the end of the enumeration.
WORLD_MASS_SLACK = 1e-9


def naive_verify(
    left: UncertainString,
    right: UncertainString,
    k: int,
) -> float:
    """Exact ``Pr(ed(left, right) <= k)`` by all-pairs world comparison."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if abs(len(left) - len(right)) > k:
        return 0.0
    left_worlds = list(enumerate_worlds(left, limit=None))
    right_worlds = list(enumerate_worlds(right, limit=None))
    # math.fsum keeps the accumulation exact; a running += can drift by
    # an ulp per term, which flips > tau decisions on knife-edge pairs.
    terms = [
        left_prob * right_prob
        for left_text, left_prob in left_worlds
        for right_text, right_prob in right_worlds
        if edit_distance_banded(left_text, right_text, k) <= k
    ]
    return math.fsum(terms)


def naive_verify_threshold(
    left: UncertainString,
    right: UncertainString,
    k: int,
    tau: float,
) -> bool:
    """Decide ``Pr(ed <= k) > tau`` with accumulate-and-stop early exits."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if abs(len(left) - len(right)) > k:
        return False
    left_worlds = list(enumerate_worlds(left, limit=None))
    right_worlds = list(enumerate_worlds(right, limit=None))
    # Running sums steer the cheap early-exit checks; every *decision* is
    # confirmed with math.fsum over the collected terms so accumulated
    # rounding error can never flip the answer. An early accept is sound
    # because partial sums of non-negative hit terms under-approximate
    # the full sum; an early reject is sound because the unseen mass is
    # at most ``1 + WORLD_MASS_SLACK - covered``.
    hit_terms: list[float] = []
    covered_terms: list[float] = []
    running_hit = 0.0
    running_covered = 0.0
    for left_text, left_prob in left_worlds:
        for right_text, right_prob in right_worlds:
            joint = left_prob * right_prob
            covered_terms.append(joint)
            running_covered += joint
            if edit_distance_banded(left_text, right_text, k) <= k:
                hit_terms.append(joint)
                running_hit += joint
                if running_hit > tau and math.fsum(hit_terms) > tau:
                    return True
            else:
                remaining = 1.0 + WORLD_MASS_SLACK - running_covered
                if running_hit + remaining <= tau:
                    remaining = 1.0 + WORLD_MASS_SLACK - math.fsum(covered_terms)
                    if math.fsum(hit_terms) + remaining <= tau:
                        return False
    return math.fsum(hit_terms) > tau
