"""Active-node sets for incremental trie edit distance (Ji et al. [11]).

For a query prefix ``u`` the active-node set of a trie is
``{v : ed(u, string(v)) <= k}`` with the exact prefix edit distance stored
per node. The set for ``u + a`` is computable from the set for ``u``
alone, which is what lets trie-based verification share work across all
instances of ``S`` with a common prefix (Section 6.2).

Transitions, for each active ``(v, d)`` and appended character ``a``:

* ``(v, d + 1)`` — delete ``a`` from the query side;
* ``(child_b(v), d + [a != b])`` — substitution or match;

followed by a *descendant closure*: any node that became active may
activate its children with distance ``+1`` (insertions on the trie side).
Processing candidates in increasing trie depth makes one pass sufficient.
"""

from __future__ import annotations

from repro.verify.trie import TrieNode

#: node -> exact prefix edit distance (<= k)
ActiveNodes = dict[TrieNode, int]


def initial_active_nodes(root: TrieNode, k: int) -> ActiveNodes:
    """Active set of the empty query prefix: nodes at depth ``<= k``.

    ``ed("", string(v)) = depth(v)``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    active: ActiveNodes = {root: 0}
    frontier = [root]
    for depth in range(1, k + 1):
        next_frontier: list[TrieNode] = []
        for node in frontier:
            for child in node.children.values():
                active[child] = depth
                next_frontier.append(child)
        frontier = next_frontier
    return active


def advance_active_nodes(active: ActiveNodes, char: str, k: int) -> ActiveNodes:
    """Active set after appending ``char`` to the query prefix."""
    candidates: ActiveNodes = {}
    for node, dist in active.items():
        up = dist + 1
        if up <= k:  # deletion of `char` on the query side
            if candidates.get(node, k + 1) > up:
                candidates[node] = up
        for label, child in node.children.items():
            step = dist if label == char else dist + 1
            if step <= k and candidates.get(child, k + 1) > step:
                candidates[child] = step
    if not candidates:
        return candidates
    # Descendant closure (trie-side insertions): children of an active node
    # are active with distance + 1. Sorting by depth guarantees each node's
    # final distance is known before its children are considered.
    for node in sorted(candidates, key=lambda n: n.depth):
        down = candidates[node] + 1
        if down > k:
            continue
        for child in node.children.values():
            if candidates.get(child, k + 1) > down:
                candidates[child] = down
    return candidates


def active_leaf_probability(active: ActiveNodes, leaf_depth: int) -> float:
    """Total probability mass of active *leaves* (depth == ``leaf_depth``)."""
    return sum(
        node.prob for node in active if node.depth == leaf_depth
    )
