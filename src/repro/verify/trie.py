"""Trie over the possible instances of an uncertain string.

Because the character-level model factorizes per position, the trie of all
instances of ``R`` is the layered product of position supports: every node
at depth ``d`` has one child per alternative of ``R[d]``. Probabilities
multiply down the path; a leaf (depth ``|R|``) carries the probability of
its instance. Shared prefixes are shared nodes, which is exactly what the
verification algorithm exploits to overlap the cost of exponentially many
instances (Section 6.2).
"""

from __future__ import annotations

from typing import Iterator

from repro.uncertain.string import UncertainString


class TrieNode:
    """One trie node: children keyed by character, path probability."""

    __slots__ = ("children", "prob", "depth")

    def __init__(self, depth: int, prob: float) -> None:
        self.children: dict[str, "TrieNode"] = {}
        self.prob = prob
        self.depth = depth

    def __repr__(self) -> str:
        return f"TrieNode(depth={self.depth}, prob={self.prob:.4g}, fanout={len(self.children)})"


class Trie:
    """The full instance trie of one uncertain string."""

    __slots__ = ("root", "length", "node_count")

    def __init__(self, root: TrieNode, length: int, node_count: int) -> None:
        self.root = root
        self.length = length
        self.node_count = node_count

    def leaves(self) -> Iterator[tuple[str, TrieNode]]:
        """Iterate ``(instance, leaf node)`` pairs."""

        def walk(node: TrieNode, prefix: list[str]) -> Iterator[tuple[str, TrieNode]]:
            if node.depth == self.length:
                yield "".join(prefix), node
                return
            for char, child in node.children.items():
                prefix.append(char)
                yield from walk(child, prefix)
                prefix.pop()

        return walk(self.root, [])


def build_trie(string: UncertainString) -> Trie:
    """Materialize the instance trie ``T_R`` of ``string``.

    Nodes are created level by level; the node count is
    ``1 + sum over depths of the number of distinct prefixes`` and grows
    with the number of uncertain positions — callers should budget with
    :meth:`UncertainString.world_count` first for extreme inputs.
    """
    root = TrieNode(depth=0, prob=1.0)
    frontier = [root]
    node_count = 1
    for depth, position in enumerate(string, start=1):
        next_frontier: list[TrieNode] = []
        alternatives = list(position.items())
        for node in frontier:
            for char, char_prob in alternatives:
                child = TrieNode(depth=depth, prob=node.prob * char_prob)
                node.children[char] = child
                next_frontier.append(child)
        node_count += len(next_frontier)
        frontier = next_frontier
    return Trie(root=root, length=len(string), node_count=node_count)
