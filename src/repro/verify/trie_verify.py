"""Trie-based verification of a candidate pair (Section 6.2).

``Pr(ed(R, S) <= k)`` is the probability mass of joint worlds whose
instances are within edit distance ``k``. With ``T_R`` materialized, a
depth-first traversal of the *virtual* trie ``T_S`` carries an active-node
set per prefix; a prefix of ``S`` is expanded only while its active set is
non-empty (the paper's on-demand construction of ``T_S``), and at a leaf
``s_j`` of ``T_S`` the active leaves of ``T_R`` are exactly the instances
``r_i`` with ``ed(r_i, s_j) <= k`` — their joint mass accumulates into the
answer.

:func:`trie_verify_threshold` adds the early-termination extension: the
traversal stops as soon as the accumulated mass exceeds ``tau`` (accept) or
provably cannot reach it (reject), which the paper lists as future work on
the verification step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.uncertain.string import UncertainString
from repro.verify.active import (
    ActiveNodes,
    advance_active_nodes,
    initial_active_nodes,
)
from repro.verify.naive import WORLD_MASS_SLACK
from repro.verify.trie import Trie, build_trie


@dataclass
class VerificationStats:
    """Work counters for Figure 8-style verification comparisons."""

    expanded_prefixes: int = 0
    pruned_prefixes: int = 0
    leaf_instances: int = 0
    early_stop: bool = field(default=False)


def trie_verify(
    left: UncertainString,
    right: UncertainString,
    k: int,
    left_trie: Trie | None = None,
    stats: VerificationStats | None = None,
) -> float:
    """Exact ``Pr(ed(left, right) <= k)`` via trie traversal.

    ``left`` plays the paper's ``R`` (its trie is fully built — pass
    ``left_trie`` to amortize it across candidate pairs); ``right`` plays
    ``S`` and is explored on demand.
    """
    result, _ = _traverse(left, right, k, left_trie, tau=None, stats=stats)
    return result


def trie_verify_threshold(
    left: UncertainString,
    right: UncertainString,
    k: int,
    tau: float,
    left_trie: Trie | None = None,
    stats: VerificationStats | None = None,
) -> bool:
    """Decide ``Pr(ed(left, right) <= k) > tau`` with early termination."""
    _, decision = _traverse(left, right, k, left_trie, tau=tau, stats=stats)
    return decision


def _traverse(
    left: UncertainString,
    right: UncertainString,
    k: int,
    left_trie: Trie | None,
    tau: float | None,
    stats: VerificationStats | None,
) -> tuple[float, bool]:
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if stats is None:
        stats = VerificationStats()
    if abs(len(left) - len(right)) > k:
        return 0.0, False
    trie = left_trie if left_trie is not None else build_trie(left)
    if trie.length != len(left):
        raise ValueError("left_trie does not belong to `left`")
    leaf_depth = trie.length
    target_depth = len(right)

    # Terms are collected and combined with math.fsum so accumulated
    # rounding error can never flip a > tau decision on knife-edge pairs;
    # the running sums only steer the cheap early-exit checks, and every
    # decision is confirmed against the exact fsum. An early accept is
    # sound because partial sums of non-negative hit terms
    # under-approximate the full sum; an early reject is sound because
    # S-world mass not yet resolved (visited as a leaf or pruned) is at
    # most ``1 + WORLD_MASS_SLACK - covered``.
    hit_terms: list[float] = []
    covered_terms: list[float] = []
    running_hit = 0.0
    running_covered = 0.0

    root_active = initial_active_nodes(trie.root, k)
    # Iterative DFS: (depth, prefix probability, active set).
    stack: list[tuple[int, float, ActiveNodes]] = [(0, 1.0, root_active)]
    while stack:
        depth, prob, active = stack.pop()
        if depth == target_depth:
            stats.leaf_instances += 1
            mass = math.fsum(
                node.prob for node, dist in active.items()
                if node.depth == leaf_depth and dist <= k
            )
            hit_terms.append(prob * mass)
            running_hit += prob * mass
            covered_terms.append(prob)
            running_covered += prob
        else:
            stats.expanded_prefixes += 1
            for char, char_prob in right[depth].items():
                child_active = advance_active_nodes(active, char, k)
                if child_active:
                    stack.append((depth + 1, prob * char_prob, child_active))
                else:
                    stats.pruned_prefixes += 1
                    covered_terms.append(prob * char_prob)
                    running_covered += prob * char_prob
        if tau is not None:
            if running_hit > tau and math.fsum(hit_terms) > tau:
                stats.early_stop = True
                return math.fsum(hit_terms), True
            remaining = 1.0 + WORLD_MASS_SLACK - running_covered
            if running_hit + remaining <= tau:
                remaining = 1.0 + WORLD_MASS_SLACK - math.fsum(covered_terms)
                if math.fsum(hit_terms) + remaining <= tau:
                    stats.early_stop = True
                    return math.fsum(hit_terms), False
    total = math.fsum(hit_terms)
    return total, total > (tau if tau is not None else -1.0)
