"""Packaging entry point: metadata lives in pyproject.toml; this file
adds the **optional** native kernel extension.

``repro.filters._native._cdfdp`` is a plain-C shared library (loaded
via ctypes, never imported, so it needs no Python headers) compiled
from ``src/repro/filters/_native/cdfdp.c``. The build is best-effort by
construction: any compiler failure — or no compiler at all — downgrades
to a warning and the package installs pure-python, where
``backend="native"`` reports itself unavailable and everything else
works unchanged. Set ``REPRO_NATIVE_BUILD=0`` to skip the build
attempt entirely (the CI fallback leg uses this to prove the
no-toolchain install path).

The compile flags are load-bearing: the C kernels promise bit-for-bit
IEEE-754 parity with the pure-python reference, which only holds
without FMA contraction or fast-math value changes.
"""

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

#: Bit-exactness contract: no fused multiply-add, no fast-math.
NATIVE_CFLAGS = ["-O2", "-fno-fast-math", "-ffp-contract=off"]


class OptionalBuildExt(build_ext):
    """``build_ext`` that treats every extension as optional."""

    def build_extension(self, ext):
        if self.compiler.compiler_type == "unix":
            ext.extra_compile_args = list(NATIVE_CFLAGS)
        try:
            super().build_extension(ext)
        except Exception as exc:  # any toolchain failure → pure-python install
            print(
                f"WARNING: optional native extension {ext.name} failed to "
                f"build ({exc!r}); continuing with the pure-python "
                'kernels — backend="native" will be unavailable.',
                file=sys.stderr,
            )


def _ext_modules():
    if os.environ.get("REPRO_NATIVE_BUILD", "") == "0":
        print(
            "REPRO_NATIVE_BUILD=0: skipping the native kernel build",
            file=sys.stderr,
        )
        return []
    return [
        Extension(
            "repro.filters._native._cdfdp",
            sources=["src/repro/filters/_native/cdfdp.c"],
            libraries=["m"] if os.name == "posix" else [],
            optional=True,
        )
    ]


setup(ext_modules=_ext_modules(), cmdclass={"build_ext": OptionalBuildExt})
