"""Shim for environments without the `wheel` package (offline installs).

`pip install -e .` falls back to `setup.py develop` through this file when
PEP 517 editable builds are unavailable; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
